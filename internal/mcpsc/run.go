package mcpsc

import (
	"fmt"

	"rckalign/internal/core"
	"rckalign/internal/costmodel"
	"rckalign/internal/rcce"
	"rckalign/internal/rckskel"
	"rckalign/internal/scc"
	"rckalign/internal/sim"
	"rckalign/internal/synth"
)

// RunConfig tunes a simulated MC-PSC execution.
type RunConfig struct {
	Chip       scc.Config
	MasterCore int
}

// DefaultRunConfig mirrors the rckAlign setup (master on core 0).
func DefaultRunConfig() RunConfig {
	return RunConfig{Chip: scc.DefaultConfig(), MasterCore: 0}
}

// RunResult is the outcome of a simulated multi-criteria one-vs-all
// query.
type RunResult struct {
	// Targets lists the dataset indices compared against the query.
	Targets []int
	// PerMethod maps method name to similarity scores (aligned with
	// Targets).
	PerMethod map[string][]float64
	// Consensus is the z-score-fused similarity (aligned with Targets).
	Consensus []float64
	// Ranking orders positions in Targets by descending consensus.
	Ranking []int
	// TotalSeconds is the simulated makespan.
	TotalSeconds float64
	// SlavesPerMethod records the core partition sizes.
	SlavesPerMethod map[string]int
}

// RunOneVsAll simulates a multi-criteria one-vs-all query on the SCC:
// the master broadcasts the query and each target structure; the slave
// cores are partitioned among the methods (round-robin), so every method
// processes every target on its own cores, concurrently with the other
// methods — the paper's MC-PSC proposal. Comparisons execute natively
// inside the simulation and charge their measured operation counts to
// the simulated cores.
func RunOneVsAll(ds *synth.Dataset, query int, methods []Method, slaves int, cfg RunConfig) (RunResult, error) {
	if query < 0 || query >= ds.Len() {
		return RunResult{}, fmt.Errorf("mcpsc: query %d outside dataset", query)
	}
	if len(methods) == 0 {
		return RunResult{}, fmt.Errorf("mcpsc: no methods")
	}
	if slaves < len(methods) {
		return RunResult{}, fmt.Errorf("mcpsc: need at least one slave per method (%d methods, %d slaves)", len(methods), slaves)
	}
	if slaves > cfg.Chip.NumCores()-1 {
		return RunResult{}, fmt.Errorf("mcpsc: %d slaves exceed chip capacity %d", slaves, cfg.Chip.NumCores()-1)
	}

	engine := sim.NewEngine()
	chip := scc.New(engine, cfg.Chip)
	comm := rcce.New(chip)

	slaveIDs := make([]int, 0, slaves)
	for c := 0; len(slaveIDs) < slaves; c++ {
		if c == cfg.MasterCore {
			continue
		}
		slaveIDs = append(slaveIDs, c)
	}
	team := rckskel.NewTeam(comm, cfg.MasterCore, slaveIDs)

	// Partition slaves among methods round-robin.
	methodOf := map[int]int{}
	perMethodSlaves := map[string]int{}
	for i, core_ := range slaveIDs {
		m := i % len(methods)
		methodOf[core_] = m
		perMethodSlaves[methods[m].Name()]++
	}

	var targets []int
	for i := 0; i < ds.Len(); i++ {
		if i != query {
			targets = append(targets, i)
		}
	}

	// Per-method job queues over the same target list.
	type payload struct {
		method int
		pos    int // index into targets
	}
	queues := make([][]rckskel.Job, len(methods))
	for m := range methods {
		queues[m] = make([]rckskel.Job, len(targets))
		for pos, tgt := range targets {
			queues[m][pos] = rckskel.Job{
				ID:      m*len(targets) + pos,
				Payload: payload{method: m, pos: pos},
				Bytes:   core.StructBytes(ds.Structures[query].Len()) + core.StructBytes(ds.Structures[tgt].Len()),
			}
		}
	}
	heads := make([]int, len(methods))

	handler := func(slave int) rckskel.Handler {
		m := methods[methodOf[slave]]
		return func(job rckskel.Job) (any, costmodel.Counter, int) {
			pl := job.Payload.(payload)
			s := m.Compare(ds.Structures[query], ds.Structures[targets[pl.pos]])
			return s, s.Ops, 64
		}
	}
	team.StartSlavesWith(handler)

	out := RunResult{
		Targets:         targets,
		PerMethod:       map[string][]float64{},
		SlavesPerMethod: perMethodSlaves,
	}
	for _, m := range methods {
		out.PerMethod[m.Name()] = make([]float64, len(targets))
	}

	chip.SpawnCore(cfg.MasterCore, func(p *sim.Process) {
		chip.Compute(p, costmodel.Counter{ResiduesLoaded: uint64(ds.TotalResidues())})
		team.FARMDynamic(p, func(slave int) (rckskel.Job, bool) {
			m := methodOf[slave]
			if heads[m] >= len(queues[m]) {
				return rckskel.Job{}, false
			}
			j := queues[m][heads[m]]
			heads[m]++
			return j, true
		}, func(r rckskel.Result) {
			s := r.Payload.(Score)
			pl := payloadOf(r.JobID, len(targets))
			out.PerMethod[s.Method][pl] = s.Value
		})
		team.Terminate(p)
		out.TotalSeconds = p.Now()
	})
	if err := engine.Run(); err != nil {
		return out, err
	}

	var vectors [][]float64
	for _, m := range methods {
		vectors = append(vectors, out.PerMethod[m.Name()])
	}
	out.Consensus = Consensus(vectors)
	out.Ranking = Rank(out.Consensus)
	return out, nil
}

// payloadOf recovers the target position from a job id (inverse of the
// ID layout in RunOneVsAll).
func payloadOf(jobID, numTargets int) int { return jobID % numTargets }

// RankedTargets maps a ranking (positions into Targets) to dataset
// indices.
func (r RunResult) RankedTargets() []int {
	out := make([]int, len(r.Ranking))
	for i, pos := range r.Ranking {
		out[i] = r.Targets[pos]
	}
	return out
}
