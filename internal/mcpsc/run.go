package mcpsc

import (
	"fmt"

	"rckalign/internal/core"
	"rckalign/internal/costmodel"
	"rckalign/internal/farm"
	"rckalign/internal/pairstore"
	"rckalign/internal/pdb"
	"rckalign/internal/prune"
	"rckalign/internal/rckskel"
	"rckalign/internal/scc"
	"rckalign/internal/synth"
	"rckalign/internal/trace"
)

// RunConfig tunes a simulated MC-PSC execution.
type RunConfig struct {
	Chip       scc.Config
	MasterCore int
	// ResultBytes models the wire size of one result message (nil =
	// ScoreBytes). Override to study the result-traffic sensitivity or
	// to pin the legacy flat 64-byte model.
	ResultBytes func(Score) int
	// Trace, when non-nil, receives per-core activity intervals.
	Trace *trace.Recorder
	// Collector, when non-nil, observes every collected result.
	Collector farm.Collector
	// Store, when non-nil, memoizes native method evaluations: every
	// (method parameters, pair) is computed once on the host worker pool
	// and reused across runs sharing the store (partition ablations,
	// sweeps). Nil keeps the classic inline-compute path. Simulated
	// timing is unchanged either way — see the pairstore package.
	Store *pairstore.Store
	// PruneTM, when positive, pre-filters the TM-align method's job
	// queue: targets whose conservative TM upper bound against the query
	// (see internal/prune) falls below the threshold are never farmed,
	// and their tmalign PerMethod score stays 0 — the consensus treats
	// them as dissimilar. Other methods are unaffected (the filter is
	// calibrated for TM-score only). The skip accounting lands in
	// Report.Prune.
	PruneTM float64
}

// DefaultRunConfig mirrors the rckAlign setup (master on core 0).
func DefaultRunConfig() RunConfig {
	return RunConfig{Chip: scc.DefaultConfig(), MasterCore: 0}
}

// session maps an MC-PSC config onto the farm harness. MC-PSC always
// uses the paper's busy polling (PollingScale 1) and pulls jobs through
// FarmDynamic, so the session is declared Dynamic (fault plans are
// rejected at construction rather than mid-run).
func (cfg RunConfig) session(slaves int) farm.Config {
	return farm.Config{
		Backend:      farm.SCCSim{Chip: cfg.Chip},
		MasterCore:   cfg.MasterCore,
		Slaves:       slaves,
		PollingScale: 1,
		Dynamic:      true,
		Trace:        cfg.Trace,
		Collector:    cfg.Collector,
	}
}

// resultBytes returns the configured result wire-size model.
func (cfg RunConfig) resultBytes() func(Score) int {
	if cfg.ResultBytes != nil {
		return cfg.ResultBytes
	}
	return ScoreBytes
}

// RunResult is the outcome of a simulated multi-criteria one-vs-all
// query.
type RunResult struct {
	farm.Report
	// Targets lists the dataset indices compared against the query.
	Targets []int
	// PerMethod maps method name to similarity scores (aligned with
	// Targets).
	PerMethod map[string][]float64
	// Consensus is the z-score-fused similarity (aligned with Targets).
	Consensus []float64
	// Ranking orders positions in Targets by descending consensus.
	Ranking []int
	// SlavesPerMethod records the core partition sizes.
	SlavesPerMethod map[string]int
}

// RunOneVsAll simulates a multi-criteria one-vs-all query on the SCC:
// the master broadcasts the query and each target structure; the slave
// cores are partitioned among the methods (round-robin), so every method
// processes every target on its own cores, concurrently with the other
// methods — the paper's MC-PSC proposal. Comparisons execute natively
// inside the simulation and charge their measured operation counts to
// the simulated cores.
func RunOneVsAll(ds *synth.Dataset, query int, methods []Method, slaves int, cfg RunConfig) (RunResult, error) {
	if query < 0 || query >= ds.Len() {
		return RunResult{}, fmt.Errorf("mcpsc: query %d outside dataset", query)
	}
	if len(methods) == 0 {
		return RunResult{}, fmt.Errorf("mcpsc: no methods")
	}
	if slaves < len(methods) {
		return RunResult{}, fmt.Errorf("mcpsc: need at least one slave per method (%d methods, %d slaves)", len(methods), slaves)
	}
	if slaves > cfg.Chip.NumCores()-1 {
		return RunResult{}, fmt.Errorf("mcpsc: %d slaves exceed chip capacity %d", slaves, cfg.Chip.NumCores()-1)
	}

	s, err := farm.NewSession(cfg.session(slaves))
	if err != nil {
		return RunResult{}, err
	}
	slaveIDs := s.Placement().Cores

	// Partition slaves among methods round-robin.
	methodOf := map[int]int{}
	perMethodSlaves := map[string]int{}
	for m, group := range farm.PartitionRoundRobin(slaveIDs, len(methods)) {
		perMethodSlaves[methods[m].Name()] = len(group)
		for _, c := range group {
			methodOf[c] = m
		}
	}

	var targets []int
	for i := 0; i < ds.Len(); i++ {
		if i != query {
			targets = append(targets, i)
		}
	}

	// The opt-in pre-filter marks targets the TM-align method may skip:
	// their bound against the query cannot reach the threshold.
	var pruneSkip map[int]bool // keyed by position in targets
	var pruneRep *prune.Report
	if cfg.PruneTM > 0 {
		f := prune.New(cfg.PruneTM)
		qf := prune.Extract(ds.Structures[query].CAs(), ds.Structures[query].Sequence())
		pruneSkip = map[int]bool{}
		for pos, tgt := range targets {
			tf := prune.Extract(ds.Structures[tgt].CAs(), ds.Structures[tgt].Sequence())
			if f.Skip(&qf, &tf) {
				pruneSkip[pos] = true
			}
		}
		rep := f.Report
		pruneRep = &rep
	}

	// Per-method job queues over the same target list. Job IDs keep the
	// dense m*len(targets)+pos layout even when pruning leaves gaps, so
	// payloadOf stays a pure function of the ID.
	type payload struct {
		method int
		pos    int // index into targets
	}
	queues := make([][]rckskel.Job, len(methods))
	for m := range methods {
		_, isTM := methods[m].(TMAlign)
		queues[m] = make([]rckskel.Job, 0, len(targets))
		for pos, tgt := range targets {
			if isTM && pruneSkip[pos] {
				continue
			}
			queues[m] = append(queues[m], rckskel.Job{
				ID:      m*len(targets) + pos,
				Payload: payload{method: m, pos: pos},
				Bytes:   core.StructBytes(ds.Structures[query].Len()) + core.StructBytes(ds.Structures[tgt].Len()),
			})
		}
	}
	heads := make([]int, len(methods))
	rb := cfg.resultBytes()
	prefetchQueues(cfg.Store, ds, methods, queues, func(pl any) (*pdb.Structure, *pdb.Structure) {
		p := pl.(payload)
		return ds.Structures[query], ds.Structures[targets[p.pos]]
	})

	s.StartSlavesWith(func(slave int) rckskel.Handler {
		m := methods[methodOf[slave]]
		return func(job rckskel.Job) (any, costmodel.Counter, int) {
			pl := job.Payload.(payload)
			sc := memoizedScore(cfg.Store, m, ds.Name, ds.Structures[query], ds.Structures[targets[pl.pos]])
			return sc, sc.Ops, rb(sc)
		}
	})

	out := RunResult{
		Targets:         targets,
		PerMethod:       map[string][]float64{},
		SlavesPerMethod: perMethodSlaves,
	}
	for _, m := range methods {
		out.PerMethod[m.Name()] = make([]float64, len(targets))
	}

	var farmErr error
	rep, err := s.Run("", func(m *farm.Master) {
		m.LoadResidues(ds.TotalResidues())
		_, farmErr = m.FarmDynamic(func(slave int) (rckskel.Job, bool) {
			mi := methodOf[slave]
			if heads[mi] >= len(queues[mi]) {
				return rckskel.Job{}, false
			}
			j := queues[mi][heads[mi]]
			heads[mi]++
			return j, true
		}, func(r rckskel.Result) {
			sc := r.Payload.(Score)
			pl := payloadOf(r.JobID, len(targets))
			out.PerMethod[sc.Method][pl] = sc.Value
		})
		m.Terminate()
	})
	if err == nil {
		err = farmErr
	}
	out.Report = rep
	out.Report.Prune = pruneRep
	if err != nil {
		return out, err
	}

	var vectors [][]float64
	for _, m := range methods {
		vectors = append(vectors, out.PerMethod[m.Name()])
	}
	out.Consensus = Consensus(vectors)
	out.Ranking = Rank(out.Consensus)
	return out, nil
}

// payloadOf recovers the target position from a job id (inverse of the
// ID layout in RunOneVsAll).
func payloadOf(jobID, numTargets int) int { return jobID % numTargets }

// RankedTargets maps a ranking (positions into Targets) to dataset
// indices.
func (r RunResult) RankedTargets() []int {
	out := make([]int, len(r.Ranking))
	for i, pos := range r.Ranking {
		out[i] = r.Targets[pos]
	}
	return out
}
