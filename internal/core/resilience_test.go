package core

import (
	"bytes"
	"encoding/json"
	"testing"

	"rckalign/internal/farm"
	"rckalign/internal/fault"
	"rckalign/internal/rckskel"
	"rckalign/internal/synth"
)

// synthCK34PR fabricates a CK34-sized workload (34 chains, 561 pairs)
// with synthetic operation counts, so resilience tests run in
// milliseconds instead of the native TM-align minutes.
func synthCK34PR() *PairResults {
	ds := synth.CK34()
	lengths := make([]int, ds.Len())
	for i, s := range ds.Structures {
		lengths[i] = s.Len()
	}
	return SynthPairResults("CK34-synth", lengths)
}

// TestResilienceAcceptance is the subsystem's acceptance criterion:
// fail-stop 4 of 47 slaves mid-run on a CK34-sized all-vs-all task; the
// farm must still score every one of the 561 pairs exactly once,
// FaultStats must account for the injected events, and the same plan
// must reproduce the identical Report byte-for-byte across two runs.
func TestResilienceAcceptance(t *testing.T) {
	pr := synthCK34PR()
	if len(pr.Pairs) != 561 {
		t.Fatalf("CK34 pair count = %d, want 561", len(pr.Pairs))
	}
	const slaves = 47

	// Fault-free run to scale the kill times to mid-run.
	base, err := Run(pr, slaves, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	t0 := base.TotalSeconds

	run := func() (RunResult, map[int]int) {
		plan := &fault.Plan{
			Seed: 7,
			Kills: []fault.CoreFailure{
				{Core: 5, At: 0.2 * t0},
				{Core: 13, At: 0.35 * t0},
				{Core: 27, At: 0.5 * t0},
				{Core: 40, At: 0.65 * t0},
			},
		}
		cfg := DefaultConfig()
		cfg.Faults = plan
		got := map[int]int{}
		cfg.Collector = farm.CollectorFunc(func(r rckskel.Result) { got[r.JobID]++ })
		r, err := Run(pr, slaves, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return r, got
	}

	r1, got1 := run()
	if len(got1) != 561 {
		t.Fatalf("scored %d of 561 pairs", len(got1))
	}
	for id, n := range got1 {
		if n != 1 {
			t.Errorf("pair job %d scored %d times", id, n)
		}
	}
	f := r1.Faults
	if f == nil {
		t.Fatal("no FaultStats block on a fault-tolerant run")
	}
	if f.Injected.CoresKilled != 4 {
		t.Errorf("CoresKilled = %d, want 4", f.Injected.CoresKilled)
	}
	if want := []int{5, 13, 27, 40}; len(f.DeadCores) != 4 ||
		f.DeadCores[0] != want[0] || f.DeadCores[1] != want[1] ||
		f.DeadCores[2] != want[2] || f.DeadCores[3] != want[3] {
		t.Errorf("DeadCores = %v, want %v", f.DeadCores, want)
	}
	if f.Timeouts == 0 || f.Retries == 0 {
		t.Errorf("4 kills left no recovery trace: %+v", f)
	}
	if f.LostJobs != 0 {
		t.Errorf("lost %d jobs with 43 healthy slaves", f.LostJobs)
	}
	if r1.Collected != 561 {
		t.Errorf("Report.Collected = %d, want 561", r1.Collected)
	}
	if r1.TotalSeconds <= t0 {
		t.Errorf("killing 4 cores did not cost time: %v <= fault-free %v", r1.TotalSeconds, t0)
	}

	// Determinism: identical plan, identical report, byte for byte.
	r2, got2 := run()
	b1, err := json.Marshal(r1.Report)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := json.Marshal(r2.Report)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Errorf("same plan, different reports:\n%s\n%s", b1, b2)
	}
	if len(got2) != len(got1) {
		t.Errorf("collection diverges between identical runs: %d vs %d", len(got2), len(got1))
	}
}

// TestResilienceLinkFaults exercises the full spec surface end to end:
// a probabilistic drop rule plus a corrupt rule on the master's links,
// parsed from the command-line spec grammar.
func TestResilienceLinkFaults(t *testing.T) {
	pr := synthCK34PR()
	plan, err := fault.ParseSpec("seed=3;drop=0>*@p0.02;corrupt=*>0@p0.02")
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Faults = plan
	got := map[int]int{}
	cfg.Collector = farm.CollectorFunc(func(r rckskel.Result) { got[r.JobID]++ })
	r, err := Run(pr, 47, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 561 {
		t.Fatalf("scored %d of 561 pairs", len(got))
	}
	f := r.Faults
	if f.Injected.Dropped == 0 && f.Injected.Corrupted == 0 {
		t.Errorf("2%% fault rates over >1100 messages injected nothing: %+v", f.Injected)
	}
	if f.Injected.Dropped > 0 && f.Timeouts == 0 {
		t.Errorf("drops went undetected: %+v", f)
	}
	if f.Injected.Corrupted > 0 && f.DetectedCorrupt == 0 && f.Timeouts == 0 {
		t.Errorf("corruptions went undetected: %+v", f)
	}
	if f.LostJobs != 0 {
		t.Errorf("lost %d jobs to transient link faults", f.LostJobs)
	}
}
