package core

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"rckalign/internal/farm"
	"rckalign/internal/fault"
	"rckalign/internal/rckskel"
	"rckalign/internal/sched"
	"rckalign/internal/synth"
	"rckalign/internal/tmalign"
)

// synthScoredCK34 is synthCK34PR with per-pair distinguishable scores,
// so a scores dump detects a lost, duplicated or mis-routed result —
// not just a miscount.
func synthScoredCK34() *PairResults {
	pr := synthCK34PR()
	for k, p := range pr.Pairs {
		r := pr.Results[k]
		r.TM1 = 1 / float64(1+p.I*37+p.J)
		r.TM2 = 1 / float64(1+p.J*53+p.I)
		r.RMSD = float64(p.I ^ p.J)
		r.AlignedLen = min(r.Len1, r.Len2)
	}
	return pr
}

// scoresDump runs the workload and renders every collected result as a
// -scores-out style line at full float precision, sorted by pair so the
// dump is arrival-order independent (the determinism rule each gather
// level must honour).
func scoresDump(t *testing.T, pr *PairResults, chips int, mutate func(*MultiChipConfig)) string {
	t.Helper()
	pairOf := map[*tmalign.Result]sched.Pair{}
	for k, p := range pr.Pairs {
		pairOf[pr.Results[k]] = p
	}
	var lines []string
	cfg := MultiChipConfig{Config: DefaultConfig(), Chips: chips}
	cfg.Collector = farm.CollectorFunc(func(r rckskel.Result) {
		res, ok := r.Payload.(*tmalign.Result)
		if !ok {
			t.Errorf("collected a non-result payload %T", r.Payload)
			return
		}
		p, ok := pairOf[res]
		if !ok {
			t.Error("collected a result that is not in the workload")
			return
		}
		lines = append(lines, fmt.Sprintf("%d %d %.17g %.17g %.17g %d\n",
			p.I, p.J, res.TM1, res.TM2, res.RMSD, res.AlignedLen))
	})
	if mutate != nil {
		mutate(&cfg)
	}
	if _, err := RunMultiChip(pr, 12, cfg); err != nil {
		t.Fatal(err)
	}
	sort.Strings(lines)
	return strings.Join(lines, "")
}

// TestGatherScoresByteIdenticalToFlat is the aggregation correctness
// golden: at every chip count, under every gather topology, fault-free
// and with FARMFT kills, the multi-chip run yields the byte-identical
// scores dump the flat single-master run produces. Aggregation, the
// gather tree and per-chip fault recovery may change timing and wire
// accounting — never results.
func TestGatherScoresByteIdenticalToFlat(t *testing.T) {
	pr := synthScoredCK34()
	want := scoresDump(t, pr, 1, nil)
	if strings.Count(want, "\n") != len(pr.Pairs) {
		t.Fatalf("flat dump has %d lines, want %d", strings.Count(want, "\n"), len(pr.Pairs))
	}
	base, err := Run(pr, 12, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	kills := &fault.Plan{Seed: 3, Kills: []fault.CoreFailure{{Core: 5, At: 0.25 * base.TotalSeconds}}}

	for _, chips := range []int{1, 2, 4, 8} {
		for _, g := range []farm.GatherConfig{
			{Mode: farm.GatherFlat},
			{Mode: farm.GatherTree, Arity: 2},
			{Mode: farm.GatherTree, Arity: 4},
		} {
			for _, faulted := range []bool{false, true} {
				name := fmt.Sprintf("chips=%d/%s/faults=%t", chips, g.String(), faulted)
				t.Run(name, func(t *testing.T) {
					got := scoresDump(t, pr, chips, func(cfg *MultiChipConfig) {
						cfg.Gather = g
						if faulted {
							cfg.Faults = kills
						}
					})
					if got != want {
						t.Errorf("scores dump differs from flat (len %d vs %d)", len(got), len(want))
					}
				})
			}
		}
	}
}

// TestAggregationBeatsPerPairWire pins the tentpole's byte accounting
// on an RS119-sized workload: at 8 chips the aggregate blobs must cost
// fewer fabric bytes than the per-pair counterfactual the report also
// carries. Flat gather (every chip ships straight to the root) is the
// apples-to-apples comparison — a deep tree relays blobs over extra
// hops and may legitimately exceed the per-pair total.
func TestAggregationBeatsPerPairWire(t *testing.T) {
	ds := synth.RS119()
	lengths := make([]int, ds.Len())
	for i, s := range ds.Structures {
		lengths[i] = s.Len()
	}
	pr := SynthPairResults("RS119-synth", lengths)
	cfg := MultiChipConfig{
		Config: DefaultConfig(),
		Chips:  8,
		Gather: farm.GatherConfig{Mode: farm.GatherFlat},
	}
	r, err := RunMultiChip(pr, 12, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ic := r.Interchip
	if ic.ResultBytes >= ic.PerPairResultBytes {
		t.Errorf("aggregated result bytes %d not below per-pair %d", ic.ResultBytes, ic.PerPairResultBytes)
	}
	if ic.AggMessages >= int64(len(pr.Pairs)) {
		t.Errorf("%d aggregate messages for %d pairs — aggregation is not aggregating", ic.AggMessages, len(pr.Pairs))
	}
}
