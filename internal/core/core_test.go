package core

import (
	"math"
	"path/filepath"
	"testing"

	"rckalign/internal/costmodel"
	"rckalign/internal/sched"
	"rckalign/internal/synth"
	"rckalign/internal/tmalign"
	"rckalign/internal/trace"
)

// smallPairs computes an 8-structure dataset's pair results once for the
// whole test package (the native compute is the slow part).
var smallPR = func() *PairResults {
	ds := synth.Small(8, 77)
	return ComputeAllPairs(ds, tmalign.FastOptions(), 0)
}()

func TestComputeAllPairsComplete(t *testing.T) {
	pr := smallPR
	if len(pr.Pairs) != 28 || len(pr.Results) != 28 {
		t.Fatalf("pairs = %d", len(pr.Pairs))
	}
	for k, r := range pr.Results {
		if r == nil {
			t.Fatalf("missing result %d", k)
		}
		if r.TM1 < 0 || r.TM1 > 1 {
			t.Fatalf("result %d TM out of range", k)
		}
		if r.Ops.DPCells == 0 {
			t.Fatalf("result %d has no ops", k)
		}
	}
	// Get must agree with slot order.
	for k, p := range pr.Pairs {
		if pr.Get(p) != pr.Results[k] {
			t.Fatal("index mismatch")
		}
	}
}

func TestSerialSecondsOrdering(t *testing.T) {
	pr := smallPR
	p54 := pr.SerialSeconds(costmodel.P54C())
	amd := pr.SerialSeconds(costmodel.AMD24())
	if p54 <= amd {
		t.Errorf("P54C (%v) must be slower than AMD (%v)", p54, amd)
	}
	total := pr.TotalOps()
	if total.DPCells == 0 {
		t.Error("TotalOps empty")
	}
}

func TestRunMatchesSerialAtOneSlave(t *testing.T) {
	pr := smallPR
	r, err := Run(pr, 1, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	serial := pr.SerialSeconds(costmodel.P54C())
	// One master + one slave: total must be within ~2% of serial (the
	// paper observes 2027 vs 2029 s).
	if math.Abs(r.TotalSeconds-serial)/serial > 0.02 {
		t.Errorf("1-slave run %v vs serial %v: overhead too large", r.TotalSeconds, serial)
	}
	if r.Collected != len(pr.Pairs) {
		t.Errorf("collected %d of %d", r.Collected, len(pr.Pairs))
	}
}

func TestRunSpeedupScales(t *testing.T) {
	pr := smallPR
	cfg := DefaultConfig()
	r1, err := Run(pr, 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r4, err := Run(pr, 4, cfg)
	if err != nil {
		t.Fatal(err)
	}
	speedup := r1.TotalSeconds / r4.TotalSeconds
	if speedup < 2.5 || speedup > 4.01 {
		t.Errorf("4-slave speedup = %v, want in (2.5, 4]", speedup)
	}
	if r4.FarmStats.MakespanSeconds <= 0 {
		t.Error("farm stats missing")
	}
	total := 0
	for _, n := range r4.FarmStats.JobsPerSlave {
		total += n
	}
	if total != len(pr.Pairs) {
		t.Errorf("jobs per slave total %d", total)
	}
}

func TestRunDeterministic(t *testing.T) {
	pr := smallPR
	a, err := Run(pr, 5, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(pr, 5, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalSeconds != b.TotalSeconds || a.LoadSeconds != b.LoadSeconds {
		t.Errorf("simulation not deterministic: %v vs %v", a.TotalSeconds, b.TotalSeconds)
	}
}

func TestRunValidatesSlaveCount(t *testing.T) {
	pr := smallPR
	if _, err := Run(pr, 0, DefaultConfig()); err == nil {
		t.Error("0 slaves accepted")
	}
	if _, err := Run(pr, 48, DefaultConfig()); err == nil {
		t.Error("48 slaves accepted (only 47 fit beside the master)")
	}
}

func TestRunSweep(t *testing.T) {
	pr := smallPR
	counts := []int{1, 3, 5}
	rs, err := RunSweep(pr, counts, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 3 {
		t.Fatalf("results = %d", len(rs))
	}
	for i := 1; i < len(rs); i++ {
		if rs[i].TotalSeconds >= rs[i-1].TotalSeconds {
			t.Errorf("more slaves not faster: %v", rs)
		}
	}
}

func TestOddSlaveCounts(t *testing.T) {
	c := OddSlaveCounts(47)
	if len(c) != 24 || c[0] != 1 || c[23] != 47 {
		t.Errorf("odd counts = %v", c)
	}
}

func TestLPTOrderingNotWorse(t *testing.T) {
	pr := smallPR
	fifo, err := Run(pr, 5, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Order = sched.LPT
	lpt, err := Run(pr, 5, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// LPT should not be substantially worse than FIFO.
	if lpt.TotalSeconds > fifo.TotalSeconds*1.1 {
		t.Errorf("LPT %v much worse than FIFO %v", lpt.TotalSeconds, fifo.TotalSeconds)
	}
}

func TestHierarchicalRun(t *testing.T) {
	pr := smallPR
	cfg := DefaultConfig()
	cfg.Hierarchy = 2
	r, err := Run(pr, 6, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Collected != len(pr.Pairs) {
		t.Errorf("hierarchical collected %d of %d", r.Collected, len(pr.Pairs))
	}
	if r.TotalSeconds <= 0 {
		t.Error("no simulated time")
	}
	// Sanity: comparable to flat within 2x (it spends 2 extra cores).
	flat, err := Run(pr, 6, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if r.TotalSeconds > flat.TotalSeconds*2 {
		t.Errorf("hierarchy %v vs flat %v", r.TotalSeconds, flat.TotalSeconds)
	}
}

func TestHierarchyCapacityValidation(t *testing.T) {
	pr := smallPR
	cfg := DefaultConfig()
	cfg.Hierarchy = 10
	if _, err := Run(pr, 47, cfg); err == nil {
		t.Error("hierarchy exceeding core count accepted")
	}
}

func TestCacheRoundTrip(t *testing.T) {
	pr := smallPR
	path := filepath.Join(t.TempDir(), "cache.gob")
	if err := pr.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadPairResults(pr.Dataset, path)
	if err != nil {
		t.Fatal(err)
	}
	for k := range pr.Results {
		a, b := pr.Results[k], got.Results[k]
		if a.TM1 != b.TM1 || a.TM2 != b.TM2 || a.RMSD != b.RMSD || a.Ops != b.Ops {
			t.Fatalf("cache round trip mismatch at %d", k)
		}
	}
	// Replay must produce identical simulated timings.
	r1, err := Run(pr, 3, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(got, 3, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if r1.TotalSeconds != r2.TotalSeconds {
		t.Errorf("cached replay differs: %v vs %v", r1.TotalSeconds, r2.TotalSeconds)
	}
}

func TestCacheRejectsWrongDataset(t *testing.T) {
	pr := smallPR
	path := filepath.Join(t.TempDir(), "cache.gob")
	if err := pr.Save(path); err != nil {
		t.Fatal(err)
	}
	other := synth.Small(8, 123) // same size, different structures
	if _, err := LoadPairResults(other, path); err == nil {
		t.Error("cache accepted for a different dataset")
	}
	ck := synth.CK34()
	if _, err := LoadPairResults(ck, path); err == nil {
		t.Error("cache accepted for a different-size dataset")
	}
}

func TestComputeOrLoad(t *testing.T) {
	ds := synth.Small(4, 5)
	path := filepath.Join(t.TempDir(), "c.gob")
	a, err := ComputeOrLoad(ds, tmalign.FastOptions(), path, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ComputeOrLoad(ds, tmalign.FastOptions(), path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Results) != len(b.Results) {
		t.Fatal("reload mismatch")
	}
	for k := range a.Results {
		if a.Results[k].TM1 != b.Results[k].TM1 {
			t.Fatal("reload score mismatch")
		}
	}
}

func TestWireSizeModels(t *testing.T) {
	if StructBytes(100) <= StructBytes(10) {
		t.Error("StructBytes not increasing")
	}
	if FileBytes(100) <= StructBytes(100) {
		t.Error("a PDB file should be larger than the packed structure")
	}
	if ResultBytes(100) <= 0 {
		t.Error("ResultBytes")
	}
}

func TestLoadDatasetDirErrors(t *testing.T) {
	if _, err := LoadDatasetDir("x", nil); err == nil {
		t.Error("empty dataset accepted")
	}
	if _, err := LoadDatasetDir("x", []string{"/nonexistent.pdb"}); err == nil {
		t.Error("missing file accepted")
	}
}

func TestRunWithTrace(t *testing.T) {
	pr := smallPR
	cfg := DefaultConfig()
	rec := trace.New()
	cfg.Trace = rec
	r, err := Run(pr, 4, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Every slave core and the master must have recorded activity.
	if got := len(rec.Tracks()); got != 5 {
		t.Fatalf("tracks = %v", rec.Tracks())
	}
	// Slaves should be busy most of the run (near-linear speedup claim).
	lo, hi := rec.Span()
	if hi <= lo {
		t.Fatal("empty trace span")
	}
	for _, track := range rec.Tracks() {
		if track == "rck00" {
			continue // master: mostly idle
		}
		if u := rec.Utilization(track, lo, hi); u < 0.5 {
			t.Errorf("slave %s utilization %v, want busy cores", track, u)
		}
	}
	_ = r
}
