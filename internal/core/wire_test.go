package core

import (
	"testing"

	"rckalign/internal/farm"
	"rckalign/internal/fault"
	"rckalign/internal/metrics"
	"rckalign/internal/rckskel"
	"rckalign/internal/tmalign"
)

// collectPayloads runs the config and returns how often each result
// payload (a *tmalign.Result, pointer-identical to pr.Results) was
// collected, plus the run result.
func collectPayloads(t *testing.T, pr *PairResults, slaves int, cfg Config) (map[*tmalign.Result]int, RunResult) {
	t.Helper()
	got := map[*tmalign.Result]int{}
	cfg.Collector = farm.CollectorFunc(func(r rckskel.Result) {
		got[r.Payload.(*tmalign.Result)]++
	})
	res, err := Run(pr, slaves, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return got, res
}

// checkComplete asserts every pair's result was collected exactly once.
func checkComplete(t *testing.T, pr *PairResults, got map[*tmalign.Result]int, label string) {
	t.Helper()
	if len(got) != len(pr.Results) {
		t.Fatalf("%s: collected %d distinct results, want %d", label, len(got), len(pr.Results))
	}
	for k, r := range pr.Results {
		if got[r] != 1 {
			t.Errorf("%s: pair %v collected %d times", label, pr.Pairs[k], got[r])
		}
	}
}

// TestWireModelEquivalence is the tentpole's correctness core: caching,
// batching, blocked ordering and affinity only re-frame the wire
// protocol, so every configuration must deliver exactly the same result
// set — the same *tmalign.Result per pair, exactly once — as the
// classic one-message-per-job farm.
func TestWireModelEquivalence(t *testing.T) {
	pr := synthCK34PR()
	const slaves = 47
	classic, _ := collectPayloads(t, pr, slaves, DefaultConfig())
	checkComplete(t, pr, classic, "classic")

	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"cached", func(c *Config) { c.CacheStructs = -1 }},
		{"batched", func(c *Config) { c.Batch = 8 }},
		{"cached+batched", func(c *Config) { c.CacheStructs = -1; c.Batch = 8 }},
		{"cached+batched+affinity", func(c *Config) { c.CacheStructs = -1; c.Batch = 8; c.Affinity = true }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultConfig()
			tc.mut(&cfg)
			got, res := collectPayloads(t, pr, slaves, cfg)
			checkComplete(t, pr, got, tc.name)
			if res.Wire == nil {
				t.Fatal("wire-model run produced no Wire report block")
			}
			if res.Wire.ShippedInputBytes >= res.Wire.BaselineInputBytes {
				t.Errorf("wire model shipped %d >= baseline %d bytes",
					res.Wire.ShippedInputBytes, res.Wire.BaselineInputBytes)
			}
		})
	}
}

// TestWireReductionAcceptance pins the PR's headline number: on a
// CK34-sized workload with 47 slaves, the cached+batched+affinity wire
// ships at least 5x fewer input bytes than the classic
// ship-both-structures model.
func TestWireReductionAcceptance(t *testing.T) {
	pr := synthCK34PR()
	cfg := DefaultConfig()
	cfg.CacheStructs = -1
	cfg.Batch = 8
	cfg.Affinity = true
	got, res := collectPayloads(t, pr, 47, cfg)
	checkComplete(t, pr, got, "cached+batched+affinity")
	if res.Wire.InputReduction < 5 {
		t.Errorf("input reduction = %.2fx, want >= 5x (baseline %d B, shipped %d B)",
			res.Wire.InputReduction, res.Wire.BaselineInputBytes, res.Wire.ShippedInputBytes)
	}
	if res.Wire.CacheHitRate <= 0.5 {
		t.Errorf("affinity hit rate = %.2f, want > 0.5", res.Wire.CacheHitRate)
	}
}

// TestBatchingRelievesMasterMailbox checks the second acceptance
// criterion: at heavy polling cost (the master-bottleneck regime),
// batching lowers the peak number of slaves parked waiting for the
// master to collect.
func TestBatchingRelievesMasterMailbox(t *testing.T) {
	pr := synthCK34PR()
	peak := func(mut func(*Config)) float64 {
		cfg := DefaultConfig()
		cfg.PollingScale = 1e5
		cfg.Metrics = metrics.New()
		mut(&cfg)
		res, err := Run(pr, 47, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Metrics == nil {
			t.Fatal("metrics block missing")
		}
		return res.Metrics.PeakMailboxDepth
	}
	base := peak(func(c *Config) {})
	batched := peak(func(c *Config) { c.CacheStructs = -1; c.Batch = 8 })
	if base <= 1 {
		t.Fatalf("polling 1e5 did not congest the classic master (peak %v); the comparison is vacuous", base)
	}
	if batched >= base {
		t.Errorf("peak mailbox depth: batched %v >= classic %v", batched, base)
	}
}

// TestWireEquivalenceUnderFaults runs the cached+batched wire through
// FARMFT with mid-run core kills: a batch is one fault-tolerance unit,
// and recovery must still deliver every pair exactly once.
func TestWireEquivalenceUnderFaults(t *testing.T) {
	pr := synthCK34PR()
	base, err := Run(pr, 47, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.CacheStructs = -1
	cfg.Batch = 4
	cfg.Faults = &fault.Plan{
		Seed: 11,
		Kills: []fault.CoreFailure{
			{Core: 9, At: 0.25 * base.TotalSeconds},
			{Core: 31, At: 0.5 * base.TotalSeconds},
		},
	}
	got, res := collectPayloads(t, pr, 47, cfg)
	checkComplete(t, pr, got, "cached+batched under kills")
	if res.Faults == nil || res.Faults.Injected.CoresKilled != 2 {
		t.Fatalf("fault stats = %+v", res.Faults)
	}
	if res.Faults.Timeouts == 0 || res.Faults.Retries == 0 {
		t.Errorf("kills left no recovery trace: %+v", res.Faults)
	}
	if res.Faults.LostJobs != 0 {
		t.Errorf("lost %d jobs", res.Faults.LostJobs)
	}
	if res.Wire == nil || res.Wire.Batches == 0 {
		t.Errorf("wire block missing on a batched FT run: %+v", res.Wire)
	}
}

// TestWireModelRejections pins the config-surface errors: the
// hierarchical path has no cache/batch support, and affinity farming
// has no fault-tolerant variant.
func TestWireModelRejections(t *testing.T) {
	pr := synthCK34PR()
	cfg := DefaultConfig()
	cfg.Hierarchy = 2
	cfg.CacheStructs = -1
	if _, err := Run(pr, 8, cfg); err == nil {
		t.Error("hierarchical run accepted the wire model")
	}
	cfg = DefaultConfig()
	cfg.Affinity = true
	cfg.Faults = &fault.Plan{}
	if _, err := Run(pr, 8, cfg); err == nil {
		t.Error("affinity farming accepted a fault plan")
	}
}
