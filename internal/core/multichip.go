// Multi-chip rckAlign: shard the all-vs-all pair matrix across N SCC
// chips and farm each shard on its own chip, coordinated by the root
// master over the board-level interconnect (see internal/farm's
// MultiSession and internal/interchip). The single-chip configuration
// is not a special case of the machinery — it IS the flat path: a
// 1-chip run delegates to Run, so its reports and scores are
// bit-identical to the paper's single-master farm by construction.
package core

import (
	"fmt"

	"rckalign/internal/costmodel"
	"rckalign/internal/farm"
	"rckalign/internal/interchip"
	"rckalign/internal/rckskel"
	"rckalign/internal/sched"
)

// ShardJobHeaderBytes is the per-job descriptor size inside a shard
// message (job id, structure ids, lengths).
const ShardJobHeaderBytes = 16

// MultiChipConfig extends Config with the multi-chip axes. The embedded
// Config's Chip describes each chip; MasterCore is ignored at chips > 1
// (every chip's master is its core 0, the root is chip 0's).
type MultiChipConfig struct {
	Config
	// Chips is the chip count (<= 1 runs the flat single-chip path).
	Chips int
	// Interchip is the board-level interconnect cost profile (zero value
	// = interchip.DefaultConfig, the board profile).
	Interchip interchip.Config
	// Gather selects the result-aggregation topology across chips (zero
	// value = a gather tree of farm.DefaultGatherArity).
	Gather farm.GatherConfig
	// ShardTile is the block granularity, in structures, for sharding
	// the pair grid across chips: whole Tile x Tile blocks move
	// together so each structure lands on few chips. 0 derives it from
	// the run's blocked-ordering tile (or sched.DefaultTile when
	// blocking is off).
	ShardTile int
}

// shardTileSize resolves MultiChipConfig.ShardTile against the run's
// ordering tile.
func (cfg MultiChipConfig) shardTileSize(orderTile int) int {
	switch {
	case cfg.ShardTile > 0:
		return cfg.ShardTile
	case orderTile > 1:
		return orderTile
	}
	return sched.DefaultTile
}

// shardWireBytes models handing one shard to a remote chip over the
// interchip fabric: the shard framing, one descriptor per job, and each
// distinct structure's coordinates exactly once — the board-tier
// analogue of the on-chip structure-cache model (a chip never receives
// the same coordinates twice in one scatter).
func shardWireBytes(shard []sched.Pair, lengths []int) int64 {
	bytes := int64(farm.ShardHeaderBytes) + int64(len(shard))*ShardJobHeaderBytes
	seen := map[int]bool{}
	for _, p := range shard {
		for _, i := range []int{p.I, p.J} {
			if !seen[i] {
				seen[i] = true
				bytes += int64(StructBytes(lengths[i]))
			}
		}
	}
	return bytes
}

// RunMultiChip simulates rckAlign on cfg.Chips SCC chips with
// slavesPerChip slave cores each. With Chips <= 1 it delegates to the
// flat Run (including fault plans and every flat-only feature), so a
// 1-chip multi-chip run is the flat run. At Chips > 1 the pair list is
// ordered exactly as the flat path would order it, sharded into whole
// tile blocks across chips (heaviest block first onto the least loaded
// chip), and farmed hierarchically: root master on chip 0 scatters the
// shards over the interchip fabric, each chip's sub-master farms its
// shard on its own mesh, and results return as aggregate blobs up the
// configured gather topology. Fault plans (core ids global across the
// board) run FARMFT per chip; affinity farming deals each shard onto
// that chip's workers. Only the on-chip master hierarchy stays a
// single-chip feature (the chips are the hierarchy), and — as on the
// flat path — affinity and faults are mutually exclusive.
func RunMultiChip(pr *PairResults, slavesPerChip int, cfg MultiChipConfig) (RunResult, error) {
	if cfg.Chips <= 1 {
		return Run(pr, slavesPerChip, cfg.Config)
	}
	if cfg.Hierarchy > 0 {
		return RunResult{}, fmt.Errorf("core: multi-chip run does not support the on-chip master hierarchy (chips are the hierarchy)")
	}
	if cfg.Affinity && cfg.Faults != nil {
		return RunResult{}, fmt.Errorf("core: affinity farming: %w", farm.ErrFaultsUnsupported)
	}

	lengths := pr.lengths()
	cacheCap := cfg.cacheCapacity(lengths)
	tile := cfg.tileSize(cacheCap)
	ordered, err := cfg.orderedPairs(pr, lengths, tile)
	if err != nil {
		return RunResult{}, err
	}
	shards, err := sched.ShardPairs(ordered, cfg.Chips, cfg.shardTileSize(tile), sched.LengthProductCost(lengths))
	if err != nil {
		return RunResult{}, err
	}

	ms, err := farm.NewMultiSession(farm.MultiConfig{
		Backend:          farm.MultiChip{Chips: cfg.Chips, Chip: cfg.Chip, Interchip: cfg.Interchip},
		SlavesPerChip:    slavesPerChip,
		ThreadsPerWorker: cfg.ThreadsPerWorker,
		ThreadEfficiency: cfg.ThreadEfficiency,
		PollingScale:     cfg.PollingScale,
		Trace:            cfg.Trace,
		Metrics:          cfg.Metrics,
		Collector:        cfg.Collector,
		Batch:            cfg.Batch,
		CacheStructs:     cacheCap,
		Gather:           cfg.Gather,
		Faults:           cfg.Faults,
		FT:               cfg.FT,
		Dynamic:          cfg.Affinity,
	})
	if err != nil {
		return RunResult{}, err
	}
	opScale := ms.ChipSession(0).Placement().OpScale
	if cfg.Faults != nil && cfg.FT.JobDeadlineSeconds == 0 {
		d := DeriveJobDeadline(pr, cfg.Chip.CPU, opScale)
		if cfg.Batch > 1 {
			// A batch is one fault-tolerance unit of up to Batch jobs:
			// its deadline must cover them back to back.
			d *= float64(cfg.Batch)
		}
		ms.SetJobDeadline(d)
	}
	handler := func(job rckskel.Job) (any, costmodel.Counter, int) {
		p := job.Payload.(sched.Pair)
		res := pr.Get(p)
		return res, res.Ops.Scaled(opScale), ResultBytes(res.Len2)
	}
	if cfg.Batch > 1 {
		ms.StartSlaves(farm.BatchHandler(handler))
	} else {
		ms.StartSlaves(handler)
	}

	sizes := make([]int, len(lengths))
	for i, l := range lengths {
		sizes[i] = StructBytes(l)
	}
	wm := farm.WireModel{
		StructsOf: func(j rckskel.Job) []int {
			p := j.Payload.(sched.Pair)
			return []int{p.I, p.J}
		},
		Sizes: sizes,
	}
	shardBytes := make([]int64, cfg.Chips)
	for c, shard := range shards {
		if len(shard) > 0 {
			shardBytes[c] = shardWireBytes(shard, lengths)
		}
	}

	load := pr.Dataset.TotalResidues()
	if cfg.Affinity {
		// Deal each shard onto its own chip's workers, exactly as the
		// flat affinity path deals the whole pair list; job IDs stay
		// globally unique across chips and queues.
		queues := make([][][]rckskel.Job, cfg.Chips)
		idBase := 0
		for c, shard := range shards {
			if len(shard) == 0 {
				continue
			}
			sess := ms.ChipSession(c)
			workers := len(sess.Placement().WorkerLeads)
			assign := sched.AffinityAssign(shard, workers, tile, sched.LengthProductCost(lengths))
			qs := make([][]rckskel.Job, len(assign))
			for w, ps := range assign {
				jobs, err := farm.BuildJobs(ps, idBase, pairBytes(lengths))
				if err != nil {
					return RunResult{}, err
				}
				idBase += len(ps)
				qs[w] = sess.PrepareJobs(jobs, wm)
			}
			queues[c] = qs
		}
		rep, err := ms.RunAffinity(load, queues, shardBytes)
		rep.Prune = cfg.Prune
		return RunResult{Report: rep}, err
	}

	queues := make([][]rckskel.Job, cfg.Chips)
	idBase := 0
	for c, shard := range shards {
		if len(shard) == 0 {
			continue
		}
		jobs, err := farm.BuildJobs(shard, idBase, pairBytes(lengths))
		if err != nil {
			return RunResult{}, err
		}
		idBase += len(shard)
		queues[c] = ms.ChipSession(c).PrepareJobs(jobs, wm)
	}

	rep, err := ms.Run(load, queues, shardBytes)
	rep.Prune = cfg.Prune
	return RunResult{Report: rep}, err
}

// RunChipSweep simulates RunMultiChip at each chip count and returns
// the results in order (the scaling-curve axis of ChipScalingSweep).
func RunChipSweep(pr *PairResults, slavesPerChip int, chipCounts []int, cfg MultiChipConfig) ([]RunResult, error) {
	return farm.Sweep(chipCounts, func(n int) (RunResult, error) {
		c := cfg
		c.Chips = n
		return RunMultiChip(pr, slavesPerChip, c)
	})
}
