package core

import (
	"reflect"
	"testing"

	"rckalign/internal/farm"
	"rckalign/internal/fault"
	"rckalign/internal/interchip"
	"rckalign/internal/rckskel"
	"rckalign/internal/tmalign"
)

// TestMultiChipOneChipIsFlat is the contract that makes the multi-chip
// axis safe to expose everywhere: a 1-chip (or unset) MultiChipConfig
// reproduces the flat run identically — reports DeepEqual, same
// collection sequence — in the classic, wire-model and fault-tolerant
// configurations alike.
func TestMultiChipOneChipIsFlat(t *testing.T) {
	pr := synthCK34PR()
	base, err := Run(pr, 12, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		cfg  func() Config
	}{
		{"classic", DefaultConfig},
		{"wire", func() Config {
			cfg := DefaultConfig()
			cfg.CacheStructs = 8
			cfg.Batch = 4
			return cfg
		}},
		{"faults", func() Config {
			cfg := DefaultConfig()
			cfg.Faults = &fault.Plan{
				Seed:  7,
				Kills: []fault.CoreFailure{{Core: 5, At: 0.3 * base.TotalSeconds}},
			}
			return cfg
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			run := func(multi bool) (RunResult, []int) {
				var order []int
				cfg := tc.cfg()
				cfg.Collector = farm.CollectorFunc(func(r rckskel.Result) { order = append(order, r.JobID) })
				var r RunResult
				var err error
				if multi {
					r, err = RunMultiChip(pr, 12, MultiChipConfig{Config: cfg, Chips: 1})
				} else {
					r, err = Run(pr, 12, cfg)
				}
				if err != nil {
					t.Fatal(err)
				}
				return r, order
			}
			flat, flatOrder := run(false)
			multi, multiOrder := run(true)
			if !reflect.DeepEqual(flat, multi) {
				t.Errorf("1-chip multi-chip report differs from flat:\nflat  %+v\nmulti %+v", flat.Report, multi.Report)
			}
			if !reflect.DeepEqual(flatOrder, multiOrder) {
				t.Errorf("collection order differs (flat %d results, multi %d)", len(flatOrder), len(multiOrder))
			}
		})
	}
}

// multiChipCK34 runs the synthetic CK34 workload at the given chip
// count, returning the result and how often each pair's replayed
// tmalign.Result was collected.
func multiChipCK34(t *testing.T, pr *PairResults, chips, slavesPerChip int, mutate func(*MultiChipConfig)) (RunResult, map[*tmalign.Result]int) {
	t.Helper()
	seen := map[*tmalign.Result]int{}
	cfg := MultiChipConfig{Config: DefaultConfig(), Chips: chips}
	cfg.Collector = farm.CollectorFunc(func(r rckskel.Result) {
		if res, ok := r.Payload.(*tmalign.Result); ok {
			seen[res]++
		}
	})
	if mutate != nil {
		mutate(&cfg)
	}
	r, err := RunMultiChip(pr, slavesPerChip, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r, seen
}

func checkEveryPairOnce(t *testing.T, pr *PairResults, seen map[*tmalign.Result]int) {
	t.Helper()
	if len(seen) != len(pr.Results) {
		t.Fatalf("collected %d distinct pair results, want %d", len(seen), len(pr.Results))
	}
	for _, res := range pr.Results {
		if seen[res] != 1 {
			t.Errorf("pair result %p collected %d times", res, seen[res])
		}
	}
}

func TestMultiChipCompletesAllPairs(t *testing.T) {
	pr := synthCK34PR()
	for _, chips := range []int{2, 4} {
		r, seen := multiChipCK34(t, pr, chips, 12, nil)
		checkEveryPairOnce(t, pr, seen)
		if r.Chips != chips || len(r.PerChip) != chips {
			t.Fatalf("chips=%d: report Chips/PerChip = %d/%d", chips, r.Chips, len(r.PerChip))
		}
		for _, cr := range r.PerChip {
			if cr.Collected == 0 {
				t.Errorf("chips=%d: chip %d collected nothing (silent shard truncation?)", chips, cr.Chip)
			}
		}
		ic := r.Interchip
		if ic == nil || ic.Transfers == 0 || ic.Bytes == 0 {
			t.Fatalf("chips=%d: empty interchip block %+v", chips, ic)
		}
		if ic.ShardBytes == 0 || ic.ResultBytes == 0 {
			t.Errorf("chips=%d: shard/result byte split = %d/%d", chips, ic.ShardBytes, ic.ResultBytes)
		}
		// Aggregation keeps the root inbox shallow: at most one blob and
		// one done marker per chip can ever be queued at once, where the
		// per-pair protocol queued one message per remote pair.
		if ic.PeakRootInbox > 2*chips {
			t.Errorf("chips=%d: peak root inbox = %d, want <= %d", chips, ic.PeakRootInbox, 2*chips)
		}
		if ic.RootFlows < 1 {
			t.Errorf("chips=%d: root flows = %d", chips, ic.RootFlows)
		}
		if ic.ResultBytes >= ic.PerPairResultBytes {
			t.Errorf("chips=%d: aggregated result bytes %d not below per-pair %d",
				chips, ic.ResultBytes, ic.PerPairResultBytes)
		}
	}
}

// TestMultiChipSpeedup: four chips' worth of slaves must beat one
// chip's on the same workload — the whole point of scaling out.
func TestMultiChipSpeedup(t *testing.T) {
	pr := synthCK34PR()
	one, seen1 := multiChipCK34(t, pr, 1, 12, nil)
	four, seen4 := multiChipCK34(t, pr, 4, 12, nil)
	checkEveryPairOnce(t, pr, seen1)
	checkEveryPairOnce(t, pr, seen4)
	if four.TotalSeconds >= one.TotalSeconds {
		t.Errorf("4 chips (%v s) not faster than 1 chip (%v s)", four.TotalSeconds, one.TotalSeconds)
	}
}

func TestMultiChipWithWireModel(t *testing.T) {
	pr := synthCK34PR()
	r, seen := multiChipCK34(t, pr, 2, 12, func(cfg *MultiChipConfig) {
		cfg.CacheStructs = 8
		cfg.Batch = 4
	})
	checkEveryPairOnce(t, pr, seen)
	if r.Wire == nil || r.Wire.CacheHits == 0 {
		t.Fatalf("wire model off in multi-chip run: %+v", r.Wire)
	}
	for _, cr := range r.PerChip {
		if cr.Wire == nil || cr.Wire.Batches == 0 {
			t.Errorf("chip %d has no wire accounting: %+v", cr.Chip, cr.Wire)
		}
	}
}

func TestMultiChipDeterministic(t *testing.T) {
	pr := synthCK34PR()
	r1, _ := multiChipCK34(t, pr, 4, 8, nil)
	r2, _ := multiChipCK34(t, pr, 4, 8, nil)
	if !reflect.DeepEqual(r1, r2) {
		t.Errorf("multi-chip runs diverge:\n%+v\n%+v", r1.Report, r2.Report)
	}
}

func TestMultiChipRejections(t *testing.T) {
	pr := synthCK34PR()
	reject := func(name string, mutate func(*MultiChipConfig)) {
		cfg := MultiChipConfig{Config: DefaultConfig(), Chips: 2}
		mutate(&cfg)
		if _, err := RunMultiChip(pr, 8, cfg); err == nil {
			t.Errorf("%s: expected a rejection at chips > 1", name)
		}
	}
	reject("hierarchy", func(cfg *MultiChipConfig) { cfg.Hierarchy = 4 })
	reject("slaves", func(cfg *MultiChipConfig) { cfg.Config.Chip.TilesX = 1; cfg.Config.Chip.TilesY = 2 })
	// Affinity and faults stay mutually exclusive (FarmDynamic has no
	// fault-tolerant variant), and a plan must not kill any chip's
	// master (every chip's local core 0).
	reject("affinity+faults", func(cfg *MultiChipConfig) {
		cfg.Affinity = true
		cfg.Faults = &fault.Plan{}
	})
	reject("kill sub-master", func(cfg *MultiChipConfig) {
		cfg.Faults = &fault.Plan{Kills: []fault.CoreFailure{{Core: 48, At: 1}}}
	})
}

// TestMultiChipFaults: a fault plan with global core ids runs FARMFT
// per chip — kills on two different chips are recovered, every pair
// still completes exactly once, and the merged fault block reports
// global ids.
func TestMultiChipFaults(t *testing.T) {
	pr := synthCK34PR()
	base, seen := multiChipCK34(t, pr, 2, 12, nil)
	checkEveryPairOnce(t, pr, seen)
	at := 0.2 * base.TotalSeconds
	r, seen := multiChipCK34(t, pr, 2, 12, func(cfg *MultiChipConfig) {
		cfg.Faults = &fault.Plan{
			Seed: 11,
			// Core 5 lives on chip 0, core 48+7 on chip 1.
			Kills: []fault.CoreFailure{{Core: 5, At: at}, {Core: 55, At: at}},
		}
	})
	checkEveryPairOnce(t, pr, seen)
	fs := r.Faults
	if fs == nil {
		t.Fatal("fault-tolerant multi-chip run has no fault block")
	}
	if fs.Injected.CoresKilled != 2 || !reflect.DeepEqual(fs.DeadCores, []int{5, 55}) {
		t.Errorf("killed %d cores, dead = %v, want 2 and [5 55]", fs.Injected.CoresKilled, fs.DeadCores)
	}
	if len(r.PerChip) != 2 || r.PerChip[0].Faults == nil || r.PerChip[1].Faults == nil {
		t.Fatalf("per-chip fault blocks missing: %+v", r.PerChip)
	}
	if got := r.PerChip[1].Faults.DeadCores; !reflect.DeepEqual(got, []int{7}) {
		t.Errorf("chip 1 local dead cores = %v, want [7]", got)
	}
}

// TestMultiChipAffinity: the cache-affinity deal runs per chip and
// still completes every pair exactly once.
func TestMultiChipAffinity(t *testing.T) {
	pr := synthCK34PR()
	r, seen := multiChipCK34(t, pr, 2, 12, func(cfg *MultiChipConfig) {
		cfg.Affinity = true
		cfg.CacheStructs = 8
	})
	checkEveryPairOnce(t, pr, seen)
	if r.Wire == nil || r.Wire.CacheHits == 0 {
		t.Fatalf("affinity multi-chip run has no cache accounting: %+v", r.Wire)
	}
	for _, cr := range r.PerChip {
		if cr.Collected == 0 {
			t.Errorf("chip %d collected nothing under affinity", cr.Chip)
		}
	}
}

func TestRunChipSweep(t *testing.T) {
	pr := synthCK34PR()
	cfg := MultiChipConfig{Config: DefaultConfig(), Interchip: interchip.DefaultConfig()}
	results, err := RunChipSweep(pr, 8, []int{1, 2, 4}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("got %d results", len(results))
	}
	if results[0].Chips != 0 {
		t.Errorf("1-chip sweep point should be the flat report (Chips=0), got %d", results[0].Chips)
	}
	if results[1].Chips != 2 || results[2].Chips != 4 {
		t.Errorf("chip counts = %d, %d, want 2, 4", results[1].Chips, results[2].Chips)
	}
}
