package core

import (
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"

	"rckalign/internal/costmodel"
	"rckalign/internal/pairstore"
	"rckalign/internal/sched"
	"rckalign/internal/synth"
	"rckalign/internal/tmalign"
)

// The native TM-align pass over a full dataset is expensive (minutes of
// host CPU for RS119's 7021 pairs), while the simulation sweeps replay
// it dozens of times. PairResults therefore serialise to a cache file:
// the experiment drivers compute once and reload afterwards. Results are
// deterministic, so the cache is a pure memoisation — delete it to force
// recomputation.

// cachedResult is the on-disk form of one comparison (the alignment map
// and transform are not needed by the timing replays and are omitted to
// keep cache files small).
type cachedResult struct {
	Name1, Name2           string
	Len1, Len2, AlignedLen int
	RMSD, SeqID, TM1, TM2  float64
	Ops                    costmodel.Counter
}

type cacheFile struct {
	Dataset string
	Names   []string
	Lengths []int
	Results []cachedResult // in sched.AllVsAll order
}

// Save writes the pair results to path (gob encoded), creating parent
// directories as needed.
func (pr *PairResults) Save(path string) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	cf := cacheFile{Dataset: pr.Dataset.Name}
	for _, s := range pr.Dataset.Structures {
		cf.Names = append(cf.Names, s.ID)
		cf.Lengths = append(cf.Lengths, s.Len())
	}
	cf.Results = make([]cachedResult, len(pr.Results))
	for k, r := range pr.Results {
		cf.Results[k] = cachedResult{
			Name1: r.Name1, Name2: r.Name2,
			Len1: r.Len1, Len2: r.Len2, AlignedLen: r.AlignedLen,
			RMSD: r.RMSD, SeqID: r.SeqID, TM1: r.TM1, TM2: r.TM2,
			Ops: r.Ops,
		}
	}
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := gob.NewEncoder(f).Encode(&cf); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// LoadPairResults reads a cache written by Save and validates it against
// the dataset (names and lengths must match exactly).
func LoadPairResults(ds *synth.Dataset, path string) (*PairResults, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var cf cacheFile
	if err := gob.NewDecoder(f).Decode(&cf); err != nil {
		return nil, fmt.Errorf("core: cache %s: %w", path, err)
	}
	if cf.Dataset != ds.Name || len(cf.Names) != ds.Len() {
		return nil, fmt.Errorf("core: cache %s is for dataset %s/%d, want %s/%d",
			path, cf.Dataset, len(cf.Names), ds.Name, ds.Len())
	}
	for i, s := range ds.Structures {
		if cf.Names[i] != s.ID || cf.Lengths[i] != s.Len() {
			return nil, fmt.Errorf("core: cache %s: structure %d is %s/%d, want %s/%d",
				path, i, cf.Names[i], cf.Lengths[i], s.ID, s.Len())
		}
	}
	pairs := sched.AllVsAll(ds.Len())
	if len(cf.Results) != len(pairs) {
		return nil, fmt.Errorf("core: cache %s has %d results, want %d", path, len(cf.Results), len(pairs))
	}
	pr := &PairResults{
		Dataset: ds,
		Pairs:   pairs,
		Results: make([]*tmalign.Result, len(pairs)),
		index:   make(map[sched.Pair]int, len(pairs)),
	}
	for k, p := range pairs {
		pr.index[p] = k
		c := cf.Results[k]
		pr.Results[k] = &tmalign.Result{
			Name1: c.Name1, Name2: c.Name2,
			Len1: c.Len1, Len2: c.Len2, AlignedLen: c.AlignedLen,
			RMSD: c.RMSD, SeqID: c.SeqID, TM1: c.TM1, TM2: c.TM2,
			Ops: c.Ops,
		}
	}
	return pr, nil
}

// ComputeOrLoad returns cached pair results when a valid cache exists at
// path, otherwise computes natively and writes the cache. An empty path
// disables caching.
func ComputeOrLoad(ds *synth.Dataset, opt tmalign.Options, path string, parallelism int) (*PairResults, error) {
	return ComputeOrLoadShared(ds, opt, path, pairstore.New(parallelism))
}

// ComputeOrLoadShared is ComputeOrLoad backed by a shared pair store:
// on a disk-cache miss the pairs are evaluated through the store (see
// ComputeAllPairsShared), so repeated calls — other datasets'
// overlapping keys, other option sweeps, other experiment drivers —
// pay for each native comparison at most once per process.
func ComputeOrLoadShared(ds *synth.Dataset, opt tmalign.Options, path string, store *pairstore.Store) (*PairResults, error) {
	if path != "" {
		if pr, err := LoadPairResults(ds, path); err == nil {
			return pr, nil
		}
	}
	pr := ComputeAllPairsShared(ds, opt, store)
	if path != "" {
		if err := pr.Save(path); err != nil {
			return pr, fmt.Errorf("core: computed results but failed to cache: %w", err)
		}
	}
	return pr, nil
}
