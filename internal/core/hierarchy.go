package core

import (
	"fmt"

	"rckalign/internal/costmodel"
	"rckalign/internal/rcce"
	"rckalign/internal/rckskel"
	"rckalign/internal/scc"
	"rckalign/internal/sched"
	"rckalign/internal/sim"
)

// runHierarchical implements the paper's proposed extension for master
// scalability: a root master on cfg.MasterCore forwards job partitions
// to cfg.Hierarchy sub-masters, each of which FARMs its share to its own
// slave partition. The root then gathers per-partition aggregates. This
// removes the single master from every job's critical path at the cost
// of dedicating sub-master cores.
func runHierarchical(pr *PairResults, slaves int, cfg Config) (RunResult, error) {
	h := cfg.Hierarchy
	if h < 1 {
		h = 1
	}
	if h > slaves {
		h = slaves
	}
	need := 1 + h + slaves
	if need > cfg.Chip.NumCores() {
		return RunResult{}, fmt.Errorf("core: hierarchy needs %d cores, chip has %d", need, cfg.Chip.NumCores())
	}

	engine := sim.NewEngine()
	chip := scc.New(engine, cfg.Chip)
	comm := rcce.New(chip)

	root := cfg.MasterCore
	// Assign cores in id order, skipping the root.
	nextCore := 0
	take := func() int {
		for nextCore == root {
			nextCore++
		}
		c := nextCore
		nextCore++
		return c
	}
	subMasters := make([]int, h)
	for i := range subMasters {
		subMasters[i] = take()
	}
	slavesOf := make([][]int, h)
	for k := 0; k < slaves; k++ {
		i := k % h
		slavesOf[i] = append(slavesOf[i], take())
	}

	ds := pr.Dataset
	lengths := make([]int, ds.Len())
	for i, s := range ds.Structures {
		lengths[i] = s.Len()
	}
	ordered := sched.Apply(pr.Pairs, cfg.Order, sched.LengthProductCost(lengths), cfg.OrderSeed)

	// Round-robin partition of the job list over sub-masters.
	jobsOf := make([][]rckskel.Job, h)
	for k, p := range ordered {
		i := k % h
		jobsOf[i] = append(jobsOf[i], rckskel.Job{
			ID:      k,
			Payload: p,
			Bytes:   StructBytes(lengths[p.I]) + StructBytes(lengths[p.J]),
		})
	}

	handler := func(job rckskel.Job) (any, costmodel.Counter, int) {
		p := job.Payload.(sched.Pair)
		res := pr.Get(p)
		return res, res.Ops, ResultBytes(res.Len2)
	}

	type partitionDone struct {
		collected int
		stats     rckskel.Stats
	}

	teams := make([]*rckskel.Team, h)
	for i := 0; i < h; i++ {
		if len(slavesOf[i]) == 0 {
			continue
		}
		teams[i] = rckskel.NewTeam(comm, subMasters[i], slavesOf[i])
		teams[i].StartSlaves(handler)
	}

	// Sub-master processes: receive their job batch from the root, farm
	// it, report completion.
	for i := 0; i < h; i++ {
		i := i
		if teams[i] == nil {
			continue
		}
		chip.SpawnCore(subMasters[i], func(p *sim.Process) {
			m := comm.Recv(p, root, subMasters[i])
			jobs := m.Payload.([]rckskel.Job)
			collected := 0
			stats := teams[i].FARM(p, jobs, func(rckskel.Result) { collected++ })
			teams[i].Terminate(p)
			comm.Send(p, subMasters[i], root, 64, partitionDone{collected: collected, stats: stats})
		})
	}

	out := RunResult{Slaves: slaves}
	chip.SpawnCore(root, func(p *sim.Process) {
		chip.Compute(p, loadOps(ds))
		out.LoadSeconds = p.Now()
		// Forward each partition's structures+jobs descriptor. The data
		// volume is the same structure bytes the flat master would send,
		// but it moves once per partition, off the per-job critical path.
		for i := 0; i < h; i++ {
			if teams[i] == nil {
				continue
			}
			bytes := 0
			for _, j := range jobsOf[i] {
				bytes += j.Bytes
			}
			comm.Send(p, root, subMasters[i], bytes, jobsOf[i])
		}
		out.FarmStats = rckskel.Stats{JobsPerSlave: map[int]int{}}
		for i := 0; i < h; i++ {
			if teams[i] == nil {
				continue
			}
			m := comm.Recv(p, subMasters[i], root)
			done := m.Payload.(partitionDone)
			out.Collected += done.collected
			for core, n := range done.stats.JobsPerSlave {
				out.FarmStats.JobsPerSlave[core] += n
			}
			out.FarmStats.PollProbes += done.stats.PollProbes
		}
		out.TotalSeconds = p.Now()
		out.FarmStats.MakespanSeconds = out.TotalSeconds - out.LoadSeconds
	})
	if err := engine.Run(); err != nil {
		return out, err
	}
	return out, nil
}
