package core

import (
	"fmt"

	"rckalign/internal/costmodel"
	"rckalign/internal/farm"
	"rckalign/internal/rckskel"
	"rckalign/internal/sched"
	"rckalign/internal/sim"
)

// runHierarchical implements the paper's proposed extension for master
// scalability: a root master on cfg.MasterCore forwards job partitions
// to cfg.Hierarchy sub-masters, each of which FARMs its share to its own
// slave partition. The root then gathers per-partition aggregates. This
// removes the single master from every job's critical path at the cost
// of dedicating sub-master cores.
func runHierarchical(pr *PairResults, slaves int, cfg Config) (RunResult, error) {
	h := cfg.Hierarchy
	if h < 1 {
		h = 1
	}
	if h > slaves {
		h = slaves
	}
	need := 1 + h + slaves
	if need > cfg.Chip.NumCores() {
		return RunResult{}, fmt.Errorf("core: hierarchy needs %d cores, chip has %d", need, cfg.Chip.NumCores())
	}

	// The session places h+slaves cores in id order (root skipped): the
	// first h become sub-masters, the rest are dealt round-robin into the
	// h slave partitions. Thread grouping does not apply to the
	// hierarchical tree.
	fcfg := cfg.session(h + slaves)
	fcfg.ThreadsPerWorker = 0
	fcfg.ThreadEfficiency = 0
	s, err := farm.NewSession(fcfg)
	if err != nil {
		return RunResult{}, err
	}
	cores := s.Placement().Cores
	subMasters := cores[:h]
	slavesOf := farm.PartitionRoundRobin(cores[h:], h)

	ds := pr.Dataset
	lengths := pr.lengths()
	allJobs, err := cfg.buildJobs(pr, lengths, 0)
	if err != nil {
		return RunResult{}, err
	}

	// Round-robin partition of the job list over sub-masters.
	jobsOf := make([][]rckskel.Job, h)
	for k, j := range allJobs {
		jobsOf[k%h] = append(jobsOf[k%h], j)
	}

	handler := func(job rckskel.Job) (any, costmodel.Counter, int) {
		p := job.Payload.(sched.Pair)
		res := pr.Get(p)
		return res, res.Ops, ResultBytes(res.Len2)
	}

	type partitionDone struct {
		stats rckskel.Stats
	}

	teams := make([]*rckskel.Team, h)
	for i := 0; i < h; i++ {
		teams[i] = s.NewTeam(subMasters[i], slavesOf[i])
		teams[i].StartSlaves(handler)
	}

	rt := s.Runtime()
	root := cfg.MasterCore
	// Sub-master processes: receive their job batch from the root, farm
	// it, report completion.
	for i := 0; i < h; i++ {
		i := i
		rt.Chip.SpawnCore(subMasters[i], func(p *sim.Process) {
			m := rt.Comm.Recv(p, root, subMasters[i])
			jobs := m.Payload.([]rckskel.Job)
			stats := teams[i].FARM(p, jobs, func(r rckskel.Result) { s.Collect(r) })
			teams[i].Terminate(p)
			rt.Comm.Send(p, subMasters[i], root, 64, partitionDone{stats: stats})
		})
	}

	rep, err := s.Run("", func(m *farm.Master) {
		m.LoadResidues(ds.TotalResidues())
		// Forward each partition's structures+jobs descriptor. The data
		// volume is the same structure bytes the flat master would send,
		// but it moves once per partition, off the per-job critical path.
		for i := 0; i < h; i++ {
			bytes := 0
			for _, j := range jobsOf[i] {
				bytes += j.Bytes
			}
			m.Comm().Send(m.P, root, subMasters[i], bytes, jobsOf[i])
		}
		for i := 0; i < h; i++ {
			msg := m.Comm().Recv(m.P, subMasters[i], root)
			done := msg.Payload.(partitionDone)
			// The sub-masters' farms overlap in time, so their makespans
			// do not sum; the root's wall clock below is authoritative.
			st := done.stats
			st.MakespanSeconds = 0
			m.MergeStats(st)
		}
	})
	rep.FarmStats.MakespanSeconds = rep.TotalSeconds - rep.LoadSeconds
	rep.Prune = cfg.Prune
	return RunResult{Report: rep}, err
}
