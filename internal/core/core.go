// Package core implements rckAlign, the paper's primary contribution: a
// master–slaves all-vs-all protein structure comparison application for
// the SCC built on the rckskel skeleton library. The master core loads
// every structure once, generates the pairwise job list, and FARMs the
// jobs out to slave cores; slaves run TM-align on received structure
// pairs and return results over the mesh.
//
// The expensive TM-align computations are executed natively (once per
// pair, in parallel on the host) and the simulation replays their
// measured operation counts as simulated compute time on the modelled
// P54C cores — see DESIGN.md.
//
// All run variants (flat, hierarchical, tiled) are thin compositions of
// the internal/farm run harness, which owns runtime construction, slave
// placement, result collection and reporting.
package core

import (
	"fmt"

	"rckalign/internal/costmodel"
	"rckalign/internal/farm"
	"rckalign/internal/fault"
	"rckalign/internal/metrics"
	"rckalign/internal/pairstore"
	"rckalign/internal/pdb"
	"rckalign/internal/prune"
	"rckalign/internal/rckskel"
	"rckalign/internal/scc"
	"rckalign/internal/sched"
	"rckalign/internal/synth"
	"rckalign/internal/tmalign"
	"rckalign/internal/trace"
)

// StructBytes models the wire size of one structure (CA coordinates as
// three float64 plus residue metadata), as the master sends it to a
// slave.
func StructBytes(residues int) int { return 32 + 25*residues }

// FileBytes models the on-disk PDB size of a chain (one 80-column ATOM
// record per residue plus header/footer), for the NFS baseline.
func FileBytes(residues int) int { return 200 + 81*residues }

// ResultBytes models the wire size of one comparison result (scores plus
// the alignment map).
func ResultBytes(len2 int) int { return 96 + 2*len2 }

// PairResults holds the native TM-align results for every all-vs-all
// pair of a dataset, computed once and replayed by the simulators.
type PairResults struct {
	Dataset *synth.Dataset
	Pairs   []sched.Pair
	// Results[k] corresponds to Pairs[k].
	Results []*tmalign.Result
	// index maps a pair to its slot.
	index map[sched.Pair]int
}

// Get returns the result for a pair.
func (pr *PairResults) Get(p sched.Pair) *tmalign.Result { return pr.Results[pr.index[p]] }

// TotalOps sums the operation counts over all pairs.
func (pr *PairResults) TotalOps() costmodel.Counter {
	var total costmodel.Counter
	for _, r := range pr.Results {
		total.Add(r.Ops)
	}
	return total
}

// SerialSeconds returns the time a single core with the given CPU profile
// needs for the whole all-vs-all task (the paper's serial baseline),
// including loading every structure once.
func (pr *PairResults) SerialSeconds(cpu costmodel.CPU) float64 {
	ops := pr.TotalOps()
	ops.Add(costmodel.Counter{ResiduesLoaded: uint64(pr.Dataset.TotalResidues())})
	return cpu.Seconds(ops)
}

// lengths returns the per-structure chain lengths of the dataset.
func (pr *PairResults) lengths() []int {
	out := make([]int, pr.Dataset.Len())
	for i, s := range pr.Dataset.Structures {
		out[i] = s.Len()
	}
	return out
}

// ComputeAllPairs runs TM-align natively for every all-vs-all pair of
// the dataset, using up to `parallelism` host goroutines (0 = GOMAXPROCS).
// The comparisons themselves are deterministic, so the parallelism only
// affects wall-clock time, never results. It is ComputeAllPairsShared
// with a private, throwaway store; use the shared variant to reuse
// results across sweeps and configurations.
func ComputeAllPairs(ds *synth.Dataset, opt tmalign.Options, parallelism int) *PairResults {
	return ComputeAllPairsShared(ds, opt, pairstore.New(parallelism))
}

// PairKeys returns the pairstore keys of the dataset's all-vs-all pairs
// under the given TM-align options, aligned with sched.AllVsAll order.
func PairKeys(ds *synth.Dataset, opt tmalign.Options) []pairstore.Key {
	return PairKeysFor(ds, opt, sched.AllVsAll(ds.Len()))
}

// PairKeysFor returns the pairstore keys of an explicit pair subset
// (e.g. the survivors of PrunePairs), aligned with the given order.
func PairKeysFor(ds *synth.Dataset, opt tmalign.Options, pairs []sched.Pair) []pairstore.Key {
	kernel := opt.Key()
	keys := make([]pairstore.Key, len(pairs))
	for k, p := range pairs {
		keys[k] = pairstore.Key{
			Dataset: ds.Name,
			Kernel:  kernel,
			A:       ds.Structures[p.I].ID,
			B:       ds.Structures[p.J].ID,
		}
	}
	return keys
}

// ComputeAllPairsShared assembles the dataset's all-vs-all pair results
// from the store, prefetching every missing pair on the store's host
// worker pool first. Pairs already memoized (by a previous sweep point,
// experiment configuration or dataset pass under the same options) are
// reused, so N configurations cost one native evaluation per pair
// instead of N. A nil store computes serially with no memoization.
func ComputeAllPairsShared(ds *synth.Dataset, opt tmalign.Options, store *pairstore.Store) *PairResults {
	return ComputePairsShared(ds, opt, store, sched.AllVsAll(ds.Len()))
}

// ComputePairsShared is ComputeAllPairsShared restricted to an explicit
// pair subset: only the listed pairs are evaluated (natively, through
// the store) and only they appear in the returned PairResults. This is
// the compute path behind pruning — skipped pairs never reach the
// TM-align kernel, the farm job builders, or the -scores-out dump.
func ComputePairsShared(ds *synth.Dataset, opt tmalign.Options, store *pairstore.Store, pairs []sched.Pair) *PairResults {
	pr := &PairResults{
		Dataset: ds,
		Pairs:   pairs,
		Results: make([]*tmalign.Result, len(pairs)),
		index:   make(map[sched.Pair]int, len(pairs)),
	}
	for k, p := range pairs {
		pr.index[p] = k
	}
	keys := PairKeysFor(ds, opt, pairs)
	compute := func(k int) any {
		p := pairs[k]
		return tmalign.Compare(ds.Structures[p.I], ds.Structures[p.J], opt)
	}
	store.Prefetch(keys, compute)
	for k := range pairs {
		k := k
		pr.Results[k] = store.Get(keys[k], func() any { return compute(k) }).(*tmalign.Result)
	}
	return pr
}

// PrunePairs applies the opt-in similarity pre-filter to the dataset's
// all-vs-all pair list: per-structure features (length, secondary
// structure composition, sequence) are extracted once, every pair's
// conservative TM upper bound is evaluated, and pairs bounded below
// threshold are dropped. The returned pair list (canonical order
// preserved) feeds ComputePairsShared so skipped pairs never run the
// TM-align kernel; the report carries the skip accounting for
// farm.Report.Prune.
func PrunePairs(ds *synth.Dataset, threshold float64) ([]sched.Pair, *prune.Report) {
	f := prune.New(threshold)
	feats := make([]prune.Features, ds.Len())
	for i, s := range ds.Structures {
		feats[i] = prune.Extract(s.CAs(), s.Sequence())
	}
	all := sched.AllVsAll(ds.Len())
	kept := make([]sched.Pair, 0, len(all))
	for _, p := range all {
		if !f.Skip(&feats[p.I], &feats[p.J]) {
			kept = append(kept, p)
		}
	}
	rep := f.Report
	return kept, &rep
}

// DeadlineMargin is the safety factor DeriveJobDeadline applies on top
// of the most expensive job's compute time, covering staging, transfer
// and discovery latency so a healthy slave never trips its deadline.
const DeadlineMargin = 3.0

// DeriveJobDeadline returns the default fault-tolerant job deadline for
// a workload: DeadlineMargin times the compute seconds of the most
// expensive pair at the given per-core op scale.
func DeriveJobDeadline(pr *PairResults, cpu costmodel.CPU, opScale float64) float64 {
	max := 0.0
	for _, r := range pr.Results {
		if s := cpu.Seconds(r.Ops.Scaled(opScale)); s > max {
			max = s
		}
	}
	return DeadlineMargin * max
}

// SynthPairResults fabricates a PairResults for timing-only simulations
// without running native TM-align: structures carry the given chain
// lengths and each pair's operation count is a length-product DP cost.
// Scores, transforms and alignments are zero — only Ops and Len2 are
// populated, which is all the simulators consume. Resilience tests and
// sweeps use this to get a CK34-sized workload in microseconds.
func SynthPairResults(name string, lengths []int) *PairResults {
	ds := &synth.Dataset{Name: name}
	for i, l := range lengths {
		ds.Structures = append(ds.Structures, &pdb.Structure{
			ID:       fmt.Sprintf("%s-%03d", name, i),
			Residues: make([]pdb.Residue, l),
		})
	}
	pairs := sched.AllVsAll(len(lengths))
	pr := &PairResults{
		Dataset: ds,
		Pairs:   pairs,
		Results: make([]*tmalign.Result, len(pairs)),
		index:   make(map[sched.Pair]int, len(pairs)),
	}
	for k, p := range pairs {
		pr.index[p] = k
		l1, l2 := lengths[p.I], lengths[p.J]
		// ~30 DP sweeps over the L1 x L2 matrix approximates TM-align's
		// iterative refinement; exact magnitude only shifts the time scale.
		pr.Results[k] = &tmalign.Result{
			Len1: l1,
			Len2: l2,
			Ops: costmodel.Counter{
				DPCells:    30 * uint64(l1) * uint64(l2),
				ScoreEvals: 30 * uint64(min(l1, l2)),
			},
		}
	}
	return pr
}

// Config tunes an rckAlign simulation run.
type Config struct {
	// Chip is the SCC model (DefaultConfig = Table I).
	Chip scc.Config
	// MasterCore runs the master process (paper: core 0, "the first core
	// supplied to the program").
	MasterCore int
	// Order is the job ordering policy (paper: FIFO).
	Order sched.Order
	// OrderSeed drives sched.Random.
	OrderSeed int64
	// Hierarchy enables the paper's proposed two-level master tree with
	// the given number of sub-masters (0 = single master, the paper's
	// implementation).
	Hierarchy int
	// PollingScale scales the master's round-robin polling discovery
	// cost (1 = the paper's busy polling, 0 = ideal event-driven
	// notification; used by the polling ablation). Values below zero are
	// treated as 1.
	PollingScale float64
	// Trace, when non-nil, receives per-core activity intervals for
	// utilization/Gantt reports. The farm layer records internally even
	// when nil, so RunResult always carries per-core utilization.
	Trace *trace.Recorder
	// Metrics, when non-nil, receives counters, histograms and time
	// series from every simulation layer and enables the
	// Report.Metrics summary block (see farm.Config.Metrics).
	Metrics *metrics.Registry
	// Collector, when non-nil, observes every collected result (the
	// farm layer's pluggable sink).
	Collector farm.Collector
	// ThreadsPerWorker is the paper's closing future-work item
	// ("building support for threading into the base library"): when 2,
	// each worker process uses both cores of its tile, finishing each
	// job in 1/(2*ThreadEfficiency) of the serial time while occupying
	// two cores. 0 or 1 = the paper's single-threaded slaves. When the
	// slave count is not a multiple, the leftover cores are not used;
	// the rounding is reported in RunResult.EffectiveCores and
	// RunResult.DroppedCores.
	ThreadsPerWorker int
	// ThreadEfficiency is the per-thread scaling efficiency (default
	// 0.9; DP and scoring parallelise well, the Kabsch solves less so).
	ThreadEfficiency float64
	// CacheStructs models the slave-side structure cache: the master
	// ships a structure to a slave only when the slave's bounded LRU
	// (of this many structures) does not already hold it, so a job's
	// request size becomes header + miss bytes. < 0 derives the
	// capacity from the per-core cache budget
	// (costmodel.DefaultCacheBudgetBytes over the dataset's mean chain
	// size); 0 disables the model — the paper's ship-both-structures
	// wire. Flat path only (hierarchical/tiled runs reject it).
	CacheStructs int
	// Batch bundles up to Batch consecutive jobs into one request
	// message with one batched result, amortizing the master's
	// dispatch/collect overhead (0 or 1 = the paper's one message per
	// job). Flat path only.
	Batch int
	// Tile is the blocked pair-ordering tile size in structures: after
	// Order is applied, pairs are regrouped into Tile x Tile blocks of
	// the pair grid so consecutive jobs reuse cached structures. 0 =
	// sched.DefaultTile when the cache, batching or affinity is
	// enabled (no blocking otherwise); < 0 forces blocking off.
	Tile int
	// Affinity assigns whole tile blocks to slaves (heaviest-first onto
	// the least-loaded queue) and farms per-slave queues, so each
	// block's structures ship to exactly one slave — maximum cache
	// reuse at the price of coarser load balance. Fault-free flat path
	// only (the per-slave-queue farm has no fault-tolerant variant).
	Affinity bool
	// Faults, when non-nil, arms the deterministic fault injector for
	// the run and switches the master onto the fault-tolerant farm
	// protocol. Only the flat single-master path supports faults; the
	// hierarchical and tiled paths reject a plan up front.
	Faults *fault.Plan
	// FT tunes the fault-tolerant protocol (only consulted when Faults
	// is set). A zero JobDeadlineSeconds derives a deadline from the
	// most expensive job in the workload (see DeriveJobDeadline).
	FT rckskel.FTConfig
	// Prune, when non-nil, is the pre-filter accounting of the pruning
	// pass that produced the workload (see PrunePairs); the run attaches
	// it to Report.Prune so reports carry the skip statistics. It does
	// not itself filter anything — pass PrunePairs' survivors as the
	// PairResults.
	Prune *prune.Report
}

// DefaultConfig returns the paper's setup.
func DefaultConfig() Config {
	return Config{Chip: scc.DefaultConfig(), MasterCore: 0, Order: sched.FIFO, PollingScale: 1}
}

// session maps an rckAlign config onto the farm harness.
func (cfg Config) session(slaves int) farm.Config {
	return farm.Config{
		Backend:          farm.SCCSim{Chip: cfg.Chip},
		MasterCore:       cfg.MasterCore,
		Slaves:           slaves,
		ThreadsPerWorker: cfg.ThreadsPerWorker,
		ThreadEfficiency: cfg.ThreadEfficiency,
		PollingScale:     cfg.PollingScale,
		Trace:            cfg.Trace,
		Metrics:          cfg.Metrics,
		Collector:        cfg.Collector,
		Faults:           cfg.Faults,
		FT:               cfg.FT,
	}
}

// RunResult reports one simulated rckAlign execution: the unified farm
// report (makespan, load time, farm stats, per-core utilization,
// effective core count).
type RunResult struct {
	farm.Report
}

// Speedup returns base/this in time.
func (r RunResult) Speedup(baseSeconds float64) float64 { return baseSeconds / r.TotalSeconds }

// wireEnabled reports whether the run uses the cache/batch wire model.
func (cfg Config) wireEnabled() bool {
	return cfg.CacheStructs != 0 || cfg.Batch > 1 || cfg.Affinity
}

// cacheCapacity resolves Config.CacheStructs: positive capacities pass
// through, negative ones derive from the default per-core cache budget
// and the dataset's mean chain length, 0 stays disabled.
func (cfg Config) cacheCapacity(lengths []int) int {
	if cfg.CacheStructs >= 0 {
		return cfg.CacheStructs
	}
	total := 0
	for _, l := range lengths {
		total += l
	}
	mean := 0
	if len(lengths) > 0 {
		mean = total / len(lengths)
	}
	return costmodel.CacheCapacityStructs(costmodel.DefaultCacheBudgetBytes, mean)
}

// tileSize resolves Config.Tile given the resolved cache capacity:
// explicit values pass through, negative forces blocking off, and 0
// auto-selects sched.DefaultTile when the wire model is on.
func (cfg Config) tileSize(cacheCap int) int {
	switch {
	case cfg.Tile > 0:
		return cfg.Tile
	case cfg.Tile < 0:
		return 0
	case cacheCap > 0 || cfg.Batch > 1 || cfg.Affinity:
		return sched.DefaultTile
	}
	return 0
}

// pairBytes is the classic request wire size of one pair: both
// structures' coordinates.
func pairBytes(lengths []int) func(sched.Pair) int {
	return func(p sched.Pair) int {
		return StructBytes(lengths[p.I]) + StructBytes(lengths[p.J])
	}
}

// orderedPairs applies the config's ordering policy and then the
// optional blocked tiling (tile > 1) to the pair list.
func (cfg Config) orderedPairs(pr *PairResults, lengths []int, tile int) ([]sched.Pair, error) {
	ordered, err := sched.Apply(pr.Pairs, cfg.Order, sched.LengthProductCost(lengths), cfg.OrderSeed)
	if err != nil {
		return nil, err
	}
	if tile > 1 {
		ordered = sched.Blocked(ordered, tile)
	}
	return ordered, nil
}

// buildJobs orders the pair list per the config and converts it to
// sized farm jobs.
func (cfg Config) buildJobs(pr *PairResults, lengths []int, tile int) ([]rckskel.Job, error) {
	ordered, err := cfg.orderedPairs(pr, lengths, tile)
	if err != nil {
		return nil, err
	}
	return farm.BuildJobs(ordered, 0, pairBytes(lengths))
}

// Run simulates rckAlign on `slaves` slave cores (1..NumCores-1) and
// returns the simulated timing. Results are replayed from pr, so the
// PSC output is identical to the serial baseline by construction.
// With cfg.ThreadsPerWorker = 2, the `slaves` cores are grouped into
// slaves/2 dual-threaded tile workers (an odd count leaves one core
// unused; see RunResult.DroppedCores).
func Run(pr *PairResults, slaves int, cfg Config) (RunResult, error) {
	maxSlaves := cfg.Chip.NumCores() - 1
	if slaves < 1 || slaves > maxSlaves {
		return RunResult{}, fmt.Errorf("core: slave count %d outside [1,%d]", slaves, maxSlaves)
	}
	if cfg.Hierarchy > 0 {
		if cfg.Faults != nil {
			return RunResult{}, fmt.Errorf("core: hierarchical run: %w", farm.ErrFaultsUnsupported)
		}
		if cfg.wireEnabled() {
			return RunResult{}, fmt.Errorf("core: hierarchical run does not support the cache/batch wire model")
		}
		return runHierarchical(pr, slaves, cfg)
	}
	if cfg.Affinity && cfg.Faults != nil {
		return RunResult{}, fmt.Errorf("core: affinity farming: %w", farm.ErrFaultsUnsupported)
	}
	lengths := pr.lengths()
	cacheCap := cfg.cacheCapacity(lengths)
	tile := cfg.tileSize(cacheCap)
	fcfg := cfg.session(slaves)
	fcfg.Batch = cfg.Batch
	fcfg.CacheStructs = cacheCap
	// The affinity path farms per-slave queues through FarmDynamic,
	// which has no fault-tolerant variant; declaring it lets the farm
	// layer reject a fault plan at construction.
	fcfg.Dynamic = cfg.Affinity
	s, err := farm.NewSession(fcfg)
	if err != nil {
		return RunResult{}, err
	}
	opScale := s.Placement().OpScale
	if cfg.Faults != nil && cfg.FT.JobDeadlineSeconds == 0 {
		d := DeriveJobDeadline(pr, cfg.Chip.CPU, opScale)
		if cfg.Batch > 1 {
			// A batch is one fault-tolerance unit of up to Batch jobs:
			// its deadline must cover them back to back.
			d *= float64(cfg.Batch)
		}
		s.SetJobDeadline(d)
	}
	handler := func(job rckskel.Job) (any, costmodel.Counter, int) {
		p := job.Payload.(sched.Pair)
		res := pr.Get(p)
		return res, res.Ops.Scaled(opScale), ResultBytes(res.Len2)
	}
	if cfg.Batch > 1 {
		s.StartSlaves(farm.BatchHandler(handler))
	} else {
		s.StartSlaves(handler)
	}
	ordered, err := cfg.orderedPairs(pr, lengths, tile)
	if err != nil {
		return RunResult{}, err
	}
	sizes := make([]int, len(lengths))
	for i, l := range lengths {
		sizes[i] = StructBytes(l)
	}
	wm := farm.WireModel{
		StructsOf: func(j rckskel.Job) []int {
			p := j.Payload.(sched.Pair)
			return []int{p.I, p.J}
		},
		Sizes: sizes,
	}
	if cfg.Affinity {
		queues, err := affinityQueues(s, ordered, lengths, tile, wm)
		if err != nil {
			return RunResult{}, err
		}
		var farmErr error
		rep, err := s.Run("", func(m *farm.Master) {
			m.LoadResidues(pr.Dataset.TotalResidues())
			queueOf := map[int]int{}
			for w, lead := range s.Placement().WorkerLeads {
				queueOf[lead] = w
			}
			heads := make([]int, len(queues))
			_, farmErr = m.FarmDynamic(func(slave int) (rckskel.Job, bool) {
				w := queueOf[slave]
				if heads[w] >= len(queues[w]) {
					return rckskel.Job{}, false
				}
				j := queues[w][heads[w]]
				heads[w]++
				return j, true
			}, nil)
			m.Terminate()
		})
		if err == nil {
			err = farmErr
		}
		rep.Prune = cfg.Prune
		return RunResult{Report: rep}, err
	}
	jobs, err := farm.BuildJobs(ordered, 0, pairBytes(lengths))
	if err != nil {
		return RunResult{}, err
	}
	jobs = s.PrepareJobs(jobs, wm)
	rep, err := s.Run("", func(m *farm.Master) {
		// One-time load of every structure by the master (the design
		// choice Experiment I validates).
		m.LoadResidues(pr.Dataset.TotalResidues())
		m.Farm(jobs, nil)
		m.Terminate()
	})
	rep.Prune = cfg.Prune
	return RunResult{Report: rep}, err
}

// affinityQueues deals the tile blocks of the ordered pair list onto
// one job queue per placed worker and applies the session's wire shape
// (cache sizing, batching) to each queue. Job IDs stay globally unique
// across queues.
func affinityQueues(s *farm.Session, ordered []sched.Pair, lengths []int, tile int, wm farm.WireModel) ([][]rckskel.Job, error) {
	workers := len(s.Placement().WorkerLeads)
	assign := sched.AffinityAssign(ordered, workers, tile, sched.LengthProductCost(lengths))
	queues := make([][]rckskel.Job, len(assign))
	idBase := 0
	for w, ps := range assign {
		jobs, err := farm.BuildJobs(ps, idBase, pairBytes(lengths))
		if err != nil {
			return nil, err
		}
		idBase += len(ps)
		queues[w] = s.PrepareJobs(jobs, wm)
	}
	return queues, nil
}

// RunSweep simulates rckAlign for each slave count and returns the
// results in order (the paper's Experiment II sweep: 1,3,...,47).
func RunSweep(pr *PairResults, slaveCounts []int, cfg Config) ([]RunResult, error) {
	return farm.Sweep(slaveCounts, func(n int) (RunResult, error) {
		return Run(pr, n, cfg)
	})
}

// OddSlaveCounts returns the paper's sweep 1, 3, 5, ..., max.
func OddSlaveCounts(max int) []int {
	var out []int
	for n := 1; n <= max; n += 2 {
		out = append(out, n)
	}
	return out
}

// LoadDatasetDir reads every *.pdb file in a directory as a dataset, for
// users who want to run on real PDB chains instead of the synthetic
// stand-ins.
func LoadDatasetDir(name string, paths []string) (*synth.Dataset, error) {
	ds := &synth.Dataset{Name: name}
	for _, p := range paths {
		s, err := pdb.ParseFile(p)
		if err != nil {
			return nil, err
		}
		ds.Structures = append(ds.Structures, s)
	}
	if len(ds.Structures) < 2 {
		return nil, fmt.Errorf("core: dataset %s needs at least 2 structures", name)
	}
	return ds, nil
}
