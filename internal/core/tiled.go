package core

import (
	"fmt"

	"rckalign/internal/costmodel"
	"rckalign/internal/farm"
	"rckalign/internal/rckskel"
	"rckalign/internal/sched"
)

// The paper's closing future-work item: "building support for threading
// into the base library will be investigated, since this can be
// critical when the protein structure datasets are too large to be
// loaded into memory at once." RunTiled implements the standard
// out-of-core answer: the master holds at most MemoryBudget residues,
// loading the dataset in blocks and farming (a) the all-vs-all pairs
// inside each block and (b) the cross pairs of each block pair, so
// every distinct pair is executed exactly once while peak memory stays
// within two blocks.

// TiledConfig tunes an out-of-core run.
type TiledConfig struct {
	Config
	// MemoryBudgetResidues caps the residues resident at the master
	// (two blocks at a time must fit). Must hold at least the two
	// largest chains.
	MemoryBudgetResidues int
	// ReloadSecondsPerResidue is the master's cost to (re)load one
	// residue from storage when a block is swapped in (NFS/disk, not
	// mesh).
	ReloadSecondsPerResidue float64
}

// DefaultTiledConfig returns a tiled setup with the paper's chip and a
// disk-like reload cost.
func DefaultTiledConfig(budgetResidues int) TiledConfig {
	return TiledConfig{
		Config:                  DefaultConfig(),
		MemoryBudgetResidues:    budgetResidues,
		ReloadSecondsPerResidue: 4e-6, // ~80 bytes/residue at ~20 MB/s NFS
	}
}

// TiledRunResult extends RunResult with block accounting.
type TiledRunResult struct {
	RunResult
	// Blocks is the number of dataset blocks used.
	Blocks int
	// BlockLoads counts block load events (including reloads).
	BlockLoads int
	// ReloadSeconds is the total simulated time spent (re)loading
	// blocks.
	ReloadSeconds float64
}

// blockPartition splits structure indices into contiguous blocks whose
// residue totals fit half the budget (so any two blocks co-reside).
func blockPartition(lengths []int, budget int) ([][]int, error) {
	half := budget / 2
	var blocks [][]int
	var cur []int
	used := 0
	for i, l := range lengths {
		if l > half {
			return nil, fmt.Errorf("core: chain %d (%d residues) exceeds half the memory budget (%d)", i, l, half)
		}
		if used+l > half && len(cur) > 0 {
			blocks = append(blocks, cur)
			cur = nil
			used = 0
		}
		cur = append(cur, i)
		used += l
	}
	if len(cur) > 0 {
		blocks = append(blocks, cur)
	}
	return blocks, nil
}

// RunTiled simulates the out-of-core all-vs-all task on `slaves` slave
// cores under the given memory budget. Results replay from pr exactly
// as in Run; only the master's load schedule (and therefore timing)
// changes. Thread grouping does not apply to the tiled path. Block
// (re)loading replaces the one-time load, so Report.LoadSeconds stays 0
// and ReloadSeconds carries the loading cost instead.
func RunTiled(pr *PairResults, slaves int, cfg TiledConfig) (TiledRunResult, error) {
	maxSlaves := cfg.Chip.NumCores() - 1
	if slaves < 1 || slaves > maxSlaves {
		return TiledRunResult{}, fmt.Errorf("core: slave count %d outside [1,%d]", slaves, maxSlaves)
	}
	if cfg.Faults != nil {
		return TiledRunResult{}, fmt.Errorf("core: tiled run: %w", farm.ErrFaultsUnsupported)
	}
	lengths := pr.lengths()
	total := 0
	for _, l := range lengths {
		total += l
	}
	if cfg.MemoryBudgetResidues <= 0 || cfg.MemoryBudgetResidues >= total {
		// Everything fits: identical to the flat run.
		r, err := Run(pr, slaves, cfg.Config)
		return TiledRunResult{RunResult: r, Blocks: 1, BlockLoads: 1}, err
	}
	blocks, err := blockPartition(lengths, cfg.MemoryBudgetResidues)
	if err != nil {
		return TiledRunResult{}, err
	}

	fcfg := cfg.Config.session(slaves)
	fcfg.ThreadsPerWorker = 0
	fcfg.ThreadEfficiency = 0
	s, err := farm.NewSession(fcfg)
	if err != nil {
		return TiledRunResult{}, err
	}
	s.StartSlaves(func(job rckskel.Job) (any, costmodel.Counter, int) {
		p := job.Payload.(sched.Pair)
		res := pr.Get(p)
		return res, res.Ops, ResultBytes(res.Len2)
	})

	blockResidues := func(b []int) int {
		n := 0
		for _, i := range b {
			n += lengths[i]
		}
		return n
	}
	jobsFor := func(pairs []sched.Pair) []rckskel.Job {
		jobs, err := farm.BuildJobs(pairs, 0, pairBytes(lengths))
		if err != nil {
			// StructBytes is strictly positive, so sizing cannot fail.
			panic(err)
		}
		return jobs
	}

	out := TiledRunResult{Blocks: len(blocks)}
	rep, err := s.Run("", func(m *farm.Master) {
		loadBlock := func(b []int) {
			d := float64(blockResidues(b)) * cfg.ReloadSecondsPerResidue
			m.P.Wait(d)
			m.Chip().Compute(m.P, costmodel.Counter{ResiduesLoaded: uint64(blockResidues(b))})
			out.BlockLoads++
			out.ReloadSeconds += d
		}
		farmPairs := func(pairs []sched.Pair) {
			if len(pairs) == 0 {
				return
			}
			m.Farm(jobsFor(pairs), nil)
		}

		// Diagonal tiles: within-block pairs.
		for bi, b := range blocks {
			loadBlock(b)
			var pairs []sched.Pair
			for x := 0; x < len(b); x++ {
				for y := x + 1; y < len(b); y++ {
					pairs = append(pairs, sched.Pair{I: b[x], J: b[y]})
				}
			}
			farmPairs(pairs)
			// Off-diagonal tiles: this block against every later block.
			for bj := bi + 1; bj < len(blocks); bj++ {
				loadBlock(blocks[bj])
				var cross []sched.Pair
				for _, i := range b {
					for _, j := range blocks[bj] {
						cross = append(cross, sched.Pair{I: i, J: j})
					}
				}
				farmPairs(cross)
			}
		}
		m.Terminate()
	})
	// The per-tile farms run back to back; the end-to-end wall clock is
	// the meaningful makespan for the tiled schedule.
	rep.FarmStats.MakespanSeconds = rep.TotalSeconds
	rep.Prune = cfg.Prune
	out.RunResult = RunResult{Report: rep}
	return out, err
}

// RunTiledSweep simulates the tiled run for each slave count and
// returns the results in order.
func RunTiledSweep(pr *PairResults, slaveCounts []int, cfg TiledConfig) ([]TiledRunResult, error) {
	return farm.Sweep(slaveCounts, func(n int) (TiledRunResult, error) {
		return RunTiled(pr, n, cfg)
	})
}
