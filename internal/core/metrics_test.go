package core

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"rckalign/internal/farm"
	"rckalign/internal/metrics"
	"rckalign/internal/trace"
)

// metricsRun executes the package's small synthetic workload with
// metrics and tracing enabled.
func metricsRun(t *testing.T, slaves int) (RunResult, *metrics.Registry, *trace.Recorder) {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Metrics = metrics.New()
	cfg.Trace = trace.New()
	r, err := Run(smallPR, slaves, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r, cfg.Metrics, cfg.Trace
}

// TestMetricsDoNotPerturbTimings pins the zero-cost-when-observing rule:
// an instrumented run's report must be identical to an uninstrumented
// one in every field except the Metrics block itself.
func TestMetricsDoNotPerturbTimings(t *testing.T) {
	base, err := Run(smallPR, 7, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	instr, _, _ := metricsRun(t, 7)
	if instr.Report.Metrics == nil {
		t.Fatal("instrumented run has no Metrics block")
	}
	got := instr.Report
	got.Metrics = nil
	if !reflect.DeepEqual(got, base.Report) {
		t.Errorf("instrumentation changed the report:\n got %+v\nwant %+v", got, base.Report)
	}
}

// TestMetricsReportBlock sanity-checks the distilled summary against the
// known workload: 28 jobs, every stage observed once per job, a real
// worst link and heatmap from the contended mesh.
func TestMetricsReportBlock(t *testing.T) {
	r, reg, rec := metricsRun(t, 7)
	mr := r.Report.Metrics
	if mr == nil {
		t.Fatal("no Metrics block")
	}
	for _, stage := range []string{"dispatch_wait", "input_xfer", "compute", "result_xfer", "collect_wait"} {
		if got := mr.JobStages[stage].Count; got != 28 {
			t.Errorf("stage %s count = %d, want 28", stage, got)
		}
	}
	if mr.JobStages["compute"].TotalSeconds <= 0 {
		t.Error("no compute time observed")
	}
	if mr.PeakMailboxDepth < 1 {
		t.Errorf("peak mailbox depth = %v, want >= 1", mr.PeakMailboxDepth)
	}
	if mr.WorstLink == "" || mr.WorstLinkBusySeconds <= 0 {
		t.Errorf("no worst link: %q busy=%v", mr.WorstLink, mr.WorstLinkBusySeconds)
	}
	if !strings.Contains(mr.LinkHeatmap, "peak link busy") {
		t.Errorf("heatmap missing legend:\n%s", mr.LinkHeatmap)
	}
	if got := reg.Counter("farm.jobs.completed").Value(); got != 28 {
		t.Errorf("farm.jobs.completed = %v, want 28", got)
	}

	// The Chrome trace carries one thread track per traced core (7
	// slaves + master) plus counter tracks from the registry series.
	ct := farm.BuildChromeTrace(rec, reg)
	var buf bytes.Buffer
	if err := ct.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(buf.String(), `"thread_name"`); got != 8 {
		t.Errorf("thread tracks = %d, want 8", got)
	}
	for _, track := range []string{"farm.master.mailbox_depth", "noc.links.active"} {
		if !strings.Contains(buf.String(), track) {
			t.Errorf("chrome trace missing counter track %s", track)
		}
	}
}

// TestMetricsGoldenSnapshot pins byte-identical determinism: the same
// run serialises to the committed golden, and two identical runs agree
// byte for byte. Regenerate with UPDATE_GOLDEN=1 go test ./internal/core
// after an intentional metrics change.
func TestMetricsGoldenSnapshot(t *testing.T) {
	snapshot := func() []byte {
		_, reg, _ := metricsRun(t, 7)
		var buf bytes.Buffer
		if err := reg.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	got := snapshot()
	if !bytes.Equal(got, snapshot()) {
		t.Fatal("two identical runs produced different snapshots")
	}
	golden := filepath.Join("testdata", "golden_metrics.json")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("snapshot differs from %s (%d vs %d bytes); run with UPDATE_GOLDEN=1 if the change is intentional",
			golden, len(got), len(want))
	}
}
