package core

import (
	"testing"
)

func totalResidues(pr *PairResults) int {
	n := 0
	for _, s := range pr.Dataset.Structures {
		n += s.Len()
	}
	return n
}

func TestBlockPartition(t *testing.T) {
	lengths := []int{10, 20, 30, 40, 50}
	blocks, err := blockPartition(lengths, 120) // half-budget 60
	if err != nil {
		t.Fatal(err)
	}
	// Every index appears exactly once, in order.
	var flat []int
	for _, b := range blocks {
		total := 0
		for _, i := range b {
			total += lengths[i]
		}
		if total > 60 {
			t.Errorf("block %v exceeds half budget: %d", b, total)
		}
		flat = append(flat, b...)
	}
	if len(flat) != 5 {
		t.Fatalf("partition lost chains: %v", blocks)
	}
	for i, idx := range flat {
		if idx != i {
			t.Fatalf("partition reordered: %v", blocks)
		}
	}
	// A chain bigger than half the budget is rejected.
	if _, err := blockPartition([]int{100}, 120); err == nil {
		t.Error("oversized chain accepted")
	}
}

func TestRunTiledCompletesAllPairs(t *testing.T) {
	pr := smallPR
	budget := totalResidues(pr) / 2 // forces multiple blocks
	cfg := DefaultTiledConfig(budget)
	r, err := RunTiled(pr, 4, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Collected != len(pr.Pairs) {
		t.Fatalf("collected %d of %d pairs", r.Collected, len(pr.Pairs))
	}
	if r.Blocks < 2 {
		t.Errorf("expected multiple blocks, got %d", r.Blocks)
	}
	if r.BlockLoads <= r.Blocks {
		t.Errorf("off-diagonal tiles should force reloads: %d loads for %d blocks", r.BlockLoads, r.Blocks)
	}
	if r.ReloadSeconds <= 0 {
		t.Error("no reload time recorded")
	}
}

func TestRunTiledUnlimitedBudgetMatchesFlat(t *testing.T) {
	pr := smallPR
	flat, err := Run(pr, 4, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultTiledConfig(0) // 0 = unlimited
	r, err := RunTiled(pr, 4, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Blocks != 1 {
		t.Errorf("unlimited budget used %d blocks", r.Blocks)
	}
	if r.TotalSeconds != flat.TotalSeconds {
		t.Errorf("unlimited tiled (%v) != flat (%v)", r.TotalSeconds, flat.TotalSeconds)
	}
}

func TestRunTiledOverheadBounded(t *testing.T) {
	// Tiling costs reloads and per-tile farm tails, but must stay within
	// a modest factor of the flat run for this workload.
	pr := smallPR
	flat, err := Run(pr, 4, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultTiledConfig(totalResidues(pr) / 2)
	r, err := RunTiled(pr, 4, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.TotalSeconds < flat.TotalSeconds {
		t.Errorf("tiled (%v) cannot beat flat (%v): same work plus reloads", r.TotalSeconds, flat.TotalSeconds)
	}
	// With an 8-chain dataset the tiles hold only 1-4 jobs each, so the
	// per-tile farm barrier serialises most of the work across 4 slaves;
	// ~2x over flat is the honest cost of out-of-core at this tiny
	// scale (it amortises away when tiles hold >> slaves jobs).
	if r.TotalSeconds > flat.TotalSeconds*3 {
		t.Errorf("tiled overhead too large: %v vs %v", r.TotalSeconds, flat.TotalSeconds)
	}
}

func TestRunTiledValidation(t *testing.T) {
	pr := smallPR
	if _, err := RunTiled(pr, 0, DefaultTiledConfig(1000)); err == nil {
		t.Error("0 slaves accepted")
	}
	// Budget smaller than twice the largest chain must fail.
	cfg := DefaultTiledConfig(10)
	if _, err := RunTiled(pr, 4, cfg); err == nil {
		t.Error("tiny budget accepted")
	}
}

func TestRunTiledDeterministic(t *testing.T) {
	pr := smallPR
	cfg := DefaultTiledConfig(totalResidues(pr) / 2)
	a, err := RunTiled(pr, 3, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunTiled(pr, 3, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalSeconds != b.TotalSeconds || a.BlockLoads != b.BlockLoads {
		t.Error("tiled run not deterministic")
	}
}

func TestThreadedWorkers(t *testing.T) {
	pr := smallPR
	single, err := Run(pr, 8, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.ThreadsPerWorker = 2
	dual, err := Run(pr, 8, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Same 8 cores as 4 dual-threaded workers: aggregate throughput is
	// 2*0.9*4 = 7.2 core-equivalents vs 8, so the threaded run must be
	// somewhat slower overall...
	if dual.TotalSeconds < single.TotalSeconds {
		t.Errorf("dual-threaded (%v) cannot beat single-threaded (%v) on throughput", dual.TotalSeconds, single.TotalSeconds)
	}
	// ...but not by more than the efficiency loss plus tail effects.
	if dual.TotalSeconds > single.TotalSeconds*1.5 {
		t.Errorf("threading overhead too large: %v vs %v", dual.TotalSeconds, single.TotalSeconds)
	}
	if dual.Collected != len(pr.Pairs) {
		t.Errorf("collected %d", dual.Collected)
	}
	// Per-job latency halves (roughly): with 2 cores per job and only 4
	// workers, each worker handles ~7 jobs at ~55% of the serial job
	// time.
	workers := 0
	for range dual.FarmStats.JobsPerSlave {
		workers++
	}
	if workers != 4 {
		t.Errorf("dual-threaded run used %d workers, want 4", workers)
	}
}

func TestThreadedValidation(t *testing.T) {
	pr := smallPR
	cfg := DefaultConfig()
	cfg.ThreadsPerWorker = 4
	if _, err := Run(pr, 2, cfg); err == nil {
		t.Error("2 cores cannot form a 4-thread worker")
	}
}
