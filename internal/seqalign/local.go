package seqalign

import (
	"rckalign/internal/costmodel"
)

// LocalResult describes the best local alignment found by AlignLocal.
type LocalResult struct {
	// Score is the optimal local alignment score (>= 0).
	Score float64
	// Start1/End1 and Start2/End2 bound the aligned regions
	// (half-open: [Start, End)). Zero-length when Score == 0.
	Start1, End1 int
	Start2, End2 int
	// Pairs lists the aligned (i, j) positions in order.
	Pairs [][2]int
}

// AlignLocal is Smith-Waterman local alignment with linear gap penalty
// gap (<= 0): the highest-scoring pair of substrings under the scorer.
// Used for motif/fragment search over structures' profile scores; kept
// exact (validated against exhaustive search in tests).
func (a *Aligner) AlignLocal(len1, len2 int, score Scorer, gap float64, ops *costmodel.Counter) LocalResult {
	cols := len2 + 1
	n := (len1 + 1) * cols
	a.val = growSlice(a.val, n)
	a.path = growSlice(a.path, n)
	val := a.val
	for j := 0; j <= len2; j++ {
		val[j] = 0
	}
	for i := 0; i <= len1; i++ {
		val[i*cols] = 0
	}
	// dir: 0 stop, 1 diag, 2 up (gap in 2), 3 left (gap in 1). Reused
	// across calls without clearing: the fill writes every interior cell
	// and the traceback never reads border cells.
	a.dir = growSlice(a.dir, n)
	dir := a.dir

	best := 0.0
	bi, bj := 0, 0
	for i := 1; i <= len1; i++ {
		row := i * cols
		prev := row - cols
		for j := 1; j <= len2; j++ {
			d := val[prev+j-1] + score(i-1, j-1)
			u := val[prev+j] + gap
			l := val[row+j-1] + gap
			v, dd := 0.0, int8(0)
			if d > v {
				v, dd = d, 1
			}
			if u > v {
				v, dd = u, 2
			}
			if l > v {
				v, dd = l, 3
			}
			val[row+j] = v
			dir[row+j] = dd
			if v > best {
				best = v
				bi, bj = i, j
			}
		}
	}
	ops.AddDP(len1 * len2)

	res := LocalResult{Score: best}
	if best == 0 {
		return res
	}
	i, j := bi, bj
	for i > 0 && j > 0 && dir[i*cols+j] != 0 {
		switch dir[i*cols+j] {
		case 1:
			res.Pairs = append(res.Pairs, [2]int{i - 1, j - 1})
			i--
			j--
		case 2:
			i--
		default:
			j--
		}
	}
	// Pairs were collected backwards.
	for l, r := 0, len(res.Pairs)-1; l < r; l, r = l+1, r-1 {
		res.Pairs[l], res.Pairs[r] = res.Pairs[r], res.Pairs[l]
	}
	res.Start1, res.End1 = i, bi
	res.Start2, res.End2 = j, bj
	return res
}
