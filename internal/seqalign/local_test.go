package seqalign

import (
	"math/rand"
	"testing"

	"rckalign/internal/costmodel"
)

// bruteForceLocal enumerates every pair of substrings and every
// alignment between them under a linear gap model.
func bruteForceLocal(len1, len2 int, score Scorer, gap float64) float64 {
	best := 0.0
	// rec finds the best alignment score starting exactly at (i, j) with
	// a match and ending anywhere.
	var rec func(i, j int, acc float64)
	rec = func(i, j int, acc float64) {
		if acc > best {
			best = acc
		}
		if i < len1 && j < len2 {
			rec(i+1, j+1, acc+score(i, j))
		}
		if i < len1 {
			rec(i+1, j, acc+gap)
		}
		if j < len2 {
			rec(i, j+1, acc+gap)
		}
	}
	for i := 0; i < len1; i++ {
		for j := 0; j < len2; j++ {
			rec(i, j, 0)
		}
	}
	return best
}

func TestLocalMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(60))
	a := NewAligner()
	for trial := 0; trial < 40; trial++ {
		len1 := 1 + rng.Intn(5)
		len2 := 1 + rng.Intn(5)
		mtx := make([]float64, len1*len2)
		for i := range mtx {
			mtx[i] = rng.Float64()*3 - 1.5
		}
		score := func(i, j int) float64 { return mtx[i*len2+j] }
		gap := -rng.Float64()
		want := bruteForceLocal(len1, len2, score, gap)
		got := a.AlignLocal(len1, len2, score, gap, nil)
		if diff := got.Score - want; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("trial %d: local DP = %v, brute = %v", trial, got.Score, want)
		}
	}
}

func TestLocalFindsEmbeddedMotif(t *testing.T) {
	// Sequence 2 contains an exact copy of positions 10..20 of sequence
	// 1 at offset 3; everything else mismatches.
	s1 := make([]int, 40)
	s2 := make([]int, 15)
	for i := range s1 {
		s1[i] = 100 + i
	}
	for j := range s2 {
		s2[j] = -1
	}
	for j := 3; j < 13; j++ {
		s2[j] = s1[10+j-3]
	}
	a := NewAligner()
	res := a.AlignLocal(len(s1), len(s2), func(i, j int) float64 {
		if s1[i] == s2[j] {
			return 1
		}
		return -2
	}, -2, nil)
	if res.Score != 10 {
		t.Errorf("motif score = %v, want 10", res.Score)
	}
	if res.Start1 != 10 || res.End1 != 20 || res.Start2 != 3 || res.End2 != 13 {
		t.Errorf("motif bounds = [%d,%d) [%d,%d)", res.Start1, res.End1, res.Start2, res.End2)
	}
	if len(res.Pairs) != 10 {
		t.Fatalf("pairs = %v", res.Pairs)
	}
	for k, p := range res.Pairs {
		if p[0] != 10+k || p[1] != 3+k {
			t.Fatalf("pair %d = %v", k, p)
		}
	}
}

func TestLocalAllNegative(t *testing.T) {
	a := NewAligner()
	res := a.AlignLocal(5, 5, func(i, j int) float64 { return -1 }, -1, nil)
	if res.Score != 0 || len(res.Pairs) != 0 {
		t.Errorf("all-negative local alignment = %+v, want empty", res)
	}
}

func TestLocalChargesOps(t *testing.T) {
	var ops costmodel.Counter
	NewAligner().AlignLocal(6, 7, func(i, j int) float64 { return 1 }, -1, &ops)
	if ops.DPCells != 42 {
		t.Errorf("DPCells = %d", ops.DPCells)
	}
}
