package seqalign

import (
	"errors"
	"math/rand"
	"testing"

	"rckalign/internal/costmodel"
	"rckalign/internal/ss"
)

// bruteForceBest enumerates every global alignment path and scores it with
// the NWDP_TM objective (match scores; gapOpen charged on a gap move that
// immediately follows a match move) and returns the maximum total.
func bruteForceBest(len1, len2 int, score Scorer, gapOpen float64) float64 {
	best := -1e18
	var rec func(i, j int, prevMatch bool, acc float64)
	rec = func(i, j int, prevMatch bool, acc float64) {
		if i == len1 && j == len2 {
			if acc > best {
				best = acc
			}
			return
		}
		if i < len1 && j < len2 {
			rec(i+1, j+1, true, acc+score(i, j))
		}
		if i < len1 {
			pen := 0.0
			if prevMatch {
				pen = gapOpen
			}
			rec(i+1, j, false, acc+pen)
		}
		if j < len2 {
			pen := 0.0
			if prevMatch {
				pen = gapOpen
			}
			rec(i, j+1, false, acc+pen)
		}
	}
	rec(0, 0, false, 0)
	return best
}

// dpBest re-runs the DP and reads the terminal cell value via a fresh
// aligner by scoring the returned alignment is not enough (ties); instead
// we recompute the DP max directly with the same recurrence.
func dpBest(len1, len2 int, score Scorer, gapOpen float64) float64 {
	cols := len2 + 1
	val := make([]float64, (len1+1)*cols)
	path := make([]bool, (len1+1)*cols)
	for i := 1; i <= len1; i++ {
		for j := 1; j <= len2; j++ {
			d := val[(i-1)*cols+j-1] + score(i-1, j-1)
			h := val[(i-1)*cols+j]
			if path[(i-1)*cols+j] {
				h += gapOpen
			}
			v := val[i*cols+j-1]
			if path[i*cols+j-1] {
				v += gapOpen
			}
			if d >= h && d >= v {
				path[i*cols+j] = true
				val[i*cols+j] = d
			} else if v >= h {
				val[i*cols+j] = v
			} else {
				val[i*cols+j] = h
			}
		}
	}
	return val[len1*cols+len2]
}

// With gapOpen = 0 the recurrence is plain Needleman-Wunsch with free
// gaps, which IS exact: DP must equal exhaustive search.
func TestDPMatchesBruteForceFreeGaps(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 40; trial++ {
		len1 := 2 + rng.Intn(5)
		len2 := 2 + rng.Intn(5)
		m := make([]float64, len1*len2)
		for i := range m {
			m[i] = rng.Float64()*2 - 0.5
		}
		score := func(i, j int) float64 { return m[i*len2+j] }
		want := bruteForceBest(len1, len2, score, 0)
		got := dpBest(len1, len2, score, 0)
		if diff := want - got; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("trial %d: DP=%v brute=%v (len1=%d len2=%d)", trial, got, want, len1, len2)
		}
	}
}

// With gapOpen < 0, TM-align's NWDP_TM is a deliberate single-matrix
// heuristic (the path flag is insufficient state for true affine DP), so
// it may return less than the exhaustive optimum — but never more, since
// every DP traceback corresponds to a real alignment scored by the same
// rule. It must also never lose much: check it reaches the gapless
// diagonal baseline.
func TestDPHeuristicBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 40; trial++ {
		len1 := 2 + rng.Intn(5)
		len2 := 2 + rng.Intn(5)
		m := make([]float64, len1*len2)
		for i := range m {
			m[i] = rng.Float64()*2 - 0.5
		}
		score := func(i, j int) float64 { return m[i*len2+j] }
		gap := -rng.Float64()
		upper := bruteForceBest(len1, len2, score, gap)
		got := dpBest(len1, len2, score, gap)
		if got > upper+1e-9 {
			t.Fatalf("trial %d: DP=%v exceeds exhaustive optimum %v", trial, got, upper)
		}
	}
}

func TestAlignPerfectDiagonal(t *testing.T) {
	// Identity score matrix: the best alignment is the main diagonal.
	n := 10
	a := NewAligner()
	invmap := make([]int, n)
	a.Align(n, n, func(i, j int) float64 {
		if i == j {
			return 1
		}
		return -1
	}, -0.6, invmap, nil)
	for j, i := range invmap {
		if i != j {
			t.Fatalf("invmap[%d] = %d, want diagonal", j, i)
		}
	}
}

func TestAlignProducesMonotonicMap(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	a := NewAligner()
	for trial := 0; trial < 30; trial++ {
		len1 := 1 + rng.Intn(60)
		len2 := 1 + rng.Intn(60)
		m := make([]float64, len1*len2)
		for i := range m {
			m[i] = rng.Float64()*3 - 1
		}
		invmap := make([]int, len2)
		a.Align(len1, len2, func(i, j int) float64 { return m[i*len2+j] }, -0.6, invmap, nil)
		if !IsMonotonic(invmap, len1) {
			t.Fatalf("trial %d: non-monotonic alignment %v", trial, invmap)
		}
	}
}

func TestAlignChargesOps(t *testing.T) {
	var ops costmodel.Counter
	a := NewAligner()
	invmap := make([]int, 7)
	a.Align(5, 7, func(i, j int) float64 { return 0 }, -1, invmap, &ops)
	if ops.DPCells != 35 {
		t.Errorf("DPCells = %d, want 35", ops.DPCells)
	}
}

func TestAlignInvmapLengthPanic(t *testing.T) {
	defer func() {
		rec := recover()
		err, ok := rec.(error)
		if !ok || !errors.Is(err, ErrInvmapLength) {
			t.Errorf("panic value %v does not wrap ErrInvmapLength", rec)
		}
	}()
	NewAligner().Align(3, 4, func(i, j int) float64 { return 0 }, -1, make([]int, 3), nil)
}

func TestAlignerReuse(t *testing.T) {
	a := NewAligner()
	inv1 := make([]int, 20)
	a.Align(20, 20, func(i, j int) float64 {
		if i == j {
			return 1
		}
		return 0
	}, -1, inv1, nil)
	// Smaller problem after a larger one must not read stale state.
	inv2 := make([]int, 3)
	a.Align(3, 3, func(i, j int) float64 {
		if i == j {
			return 1
		}
		return 0
	}, -1, inv2, nil)
	for j, i := range inv2 {
		if i != j {
			t.Fatalf("reused aligner produced %v", inv2)
		}
	}
}

func TestAlignSS(t *testing.T) {
	mk := func(s string) []ss.Type {
		out := make([]ss.Type, len(s))
		for i, c := range s {
			switch c {
			case 'H':
				out[i] = ss.Helix
			case 'E':
				out[i] = ss.Strand
			case 'T':
				out[i] = ss.Turn
			default:
				out[i] = ss.Coil
			}
		}
		return out
	}
	sec1 := mk("CCHHHHHHCCEEEECC")
	sec2 := mk("CHHHHHHCCEEEEC")
	a := NewAligner()
	invmap := make([]int, len(sec2))
	a.AlignSS(sec1, sec2, invmap, nil)
	if !IsMonotonic(invmap, len(sec1)) {
		t.Fatal("SS alignment not monotonic")
	}
	// The helix blocks must align to each other: count aligned H-H pairs.
	hh := 0
	for j, i := range invmap {
		if i >= 0 && sec1[i] == ss.Helix && sec2[j] == ss.Helix {
			hh++
		}
	}
	if hh < 5 {
		t.Errorf("only %d helix-helix pairs aligned", hh)
	}
}

func TestScoreAndAlignedLen(t *testing.T) {
	invmap := []int{-1, 0, 2, -1, 3}
	if AlignedLen(invmap) != 3 {
		t.Errorf("AlignedLen = %d", AlignedLen(invmap))
	}
	s := Score(invmap, func(i, j int) float64 { return float64(i + j) })
	// pairs: (0,1)=1, (2,2)=4, (3,4)=7 => 12
	if s != 12 {
		t.Errorf("Score = %v, want 12", s)
	}
}

func TestIsMonotonic(t *testing.T) {
	if !IsMonotonic([]int{-1, 0, 1, -1, 5}, 6) {
		t.Error("valid map rejected")
	}
	if IsMonotonic([]int{1, 0}, 2) {
		t.Error("decreasing map accepted")
	}
	if IsMonotonic([]int{0, 0}, 2) {
		t.Error("duplicate map accepted")
	}
	if IsMonotonic([]int{0, 7}, 2) {
		t.Error("out-of-range map accepted")
	}
}

func TestGaplessThreading(t *testing.T) {
	type span struct{ k, lo, hi int }
	var got []span
	GaplessThreading(5, 3, 1, func(k, lo, hi int) {
		got = append(got, span{k, lo, hi})
		if hi-lo < 1 {
			t.Fatalf("empty overlap for k=%d", k)
		}
		for j := lo; j < hi; j++ {
			i := j + k
			if i < 0 || i >= 5 {
				t.Fatalf("k=%d j=%d maps outside chain 1", k, j)
			}
		}
	})
	// Offsets from -(3-1)=-2 to 5-1=4: 7 alignments.
	if len(got) != 7 {
		t.Fatalf("got %d offsets, want 7", len(got))
	}
	// Full-overlap offset k=0..2 must cover all of chain 2.
	for _, s := range got {
		if s.k >= 0 && s.k <= 2 && (s.lo != 0 || s.hi != 3) {
			t.Errorf("offset %d overlap [%d,%d), want full", s.k, s.lo, s.hi)
		}
	}
}

func TestGaplessThreadingMinOverlap(t *testing.T) {
	count := 0
	GaplessThreading(10, 10, 5, func(k, lo, hi int) {
		count++
		if hi-lo < 5 {
			t.Fatalf("overlap %d < minOverlap", hi-lo)
		}
	})
	// k from -5..5 => 11 offsets.
	if count != 11 {
		t.Errorf("count = %d, want 11", count)
	}
}

func BenchmarkAlign150x150(b *testing.B) {
	rng := rand.New(rand.NewSource(13))
	n := 150
	m := make([]float64, n*n)
	for i := range m {
		m[i] = rng.Float64()
	}
	a := NewAligner()
	invmap := make([]int, n)
	score := func(i, j int) float64 { return m[i*n+j] }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Align(n, n, score, -0.6, invmap, nil)
	}
}
