package seqalign

import (
	"fmt"

	"rckalign/internal/costmodel"
)

// AlignAffine is an exact affine-gap global aligner (Gotoh 1982) with
// separate gap-open and gap-extend penalties, provided alongside the
// TM-align NWDP heuristic for callers that need true optimality (the
// NWDP recurrence's single path flag is insufficient state and can
// return sub-optimal alignments when gapOpen < 0; see the package
// tests). Both penalties are <= 0; a gap of length k costs
// gapOpen + k*gapExtend.
//
// The alignment is written into invmap (invmap[j] = i or -1) and the
// optimal score is returned.
func (a *Aligner) AlignAffine(len1, len2 int, score Scorer, gapOpen, gapExtend float64, invmap []int, ops *costmodel.Counter) float64 {
	if len(invmap) != len2 {
		panic(fmt.Errorf("%w (AlignAffine: %d vs %d)", ErrInvmapLength, len(invmap), len2))
	}
	const negInf = -1e18
	cols := len2 + 1
	n := (len1 + 1) * cols

	// M: best ending in a match; X: gap in chain 2 (consuming chain 1);
	// Y: gap in chain 1 (consuming chain 2). The six tables live on the
	// Aligner so repeated calls reuse them.
	a.am = growSlice(a.am, n)
	a.ax = growSlice(a.ax, n)
	a.ay = growSlice(a.ay, n)
	a.atm = growSlice(a.atm, n)
	a.atx = growSlice(a.atx, n)
	a.aty = growSlice(a.aty, n)
	m, x, y := a.am, a.ax, a.ay
	// Tracebacks: which matrix each cell's best predecessor lives in.
	const (
		fromM = 1
		fromX = 2
		fromY = 3
	)
	// No clearing needed: the init loops rewrite the borders and the fill
	// rewrites every interior cell, which together cover every cell the
	// traceback can read.
	tm, tx, ty := a.atm, a.atx, a.aty

	m[0] = 0
	x[0], y[0] = negInf, negInf
	for i := 1; i <= len1; i++ {
		m[i*cols] = negInf
		x[i*cols] = gapOpen + float64(i)*gapExtend
		y[i*cols] = negInf
		tx[i*cols] = fromX
	}
	for j := 1; j <= len2; j++ {
		m[j] = negInf
		x[j] = negInf
		y[j] = gapOpen + float64(j)*gapExtend
		ty[j] = fromY
	}

	max3 := func(a, b, c float64) (float64, int8) {
		if a >= b && a >= c {
			return a, fromM
		}
		if b >= c {
			return b, fromX
		}
		return c, fromY
	}

	for i := 1; i <= len1; i++ {
		row := i * cols
		prev := row - cols
		for j := 1; j <= len2; j++ {
			sc := score(i-1, j-1)
			bm, tmSrc := max3(m[prev+j-1], x[prev+j-1], y[prev+j-1])
			m[row+j] = bm + sc
			tm[row+j] = tmSrc

			// X: consume chain-1 residue i (gap in chain 2).
			openX := m[prev+j] + gapOpen + gapExtend
			extX := x[prev+j] + gapExtend
			if openX >= extX {
				x[row+j] = openX
				tx[row+j] = fromM
			} else {
				x[row+j] = extX
				tx[row+j] = fromX
			}

			// Y: consume chain-2 residue j (gap in chain 1).
			openY := m[row+j-1] + gapOpen + gapExtend
			extY := y[row+j-1] + gapExtend
			if openY >= extY {
				y[row+j] = openY
				ty[row+j] = fromM
			} else {
				y[row+j] = extY
				ty[row+j] = fromY
			}
		}
	}
	ops.AddDP(3 * len1 * len2)

	for j := range invmap {
		invmap[j] = -1
	}
	// Traceback from the best terminal state.
	best, state := max3(m[len1*cols+len2], x[len1*cols+len2], y[len1*cols+len2])
	i, j := len1, len2
	for i > 0 || j > 0 {
		switch state {
		case fromM:
			if i == 0 || j == 0 {
				// Should not happen with valid initialisation.
				if i > 0 {
					state = fromX
				} else {
					state = fromY
				}
				continue
			}
			invmap[j-1] = i - 1
			state = int8(tm[i*cols+j])
			i--
			j--
		case fromX:
			state = int8(tx[i*cols+j])
			i--
		default: // fromY
			state = int8(ty[i*cols+j])
			j--
		}
	}
	return best
}
