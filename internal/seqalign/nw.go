// Package seqalign implements the Needleman–Wunsch dynamic programming
// variants used by TM-align: global alignment with a gap-opening penalty
// (free extension) over an arbitrary position score matrix, the secondary
// structure variant, and gapless threading. The DP follows TM-align's
// NWDP_TM exactly, including its traceback tie-breaking, so alignments
// match the reference algorithm.
package seqalign

import (
	"errors"
	"fmt"

	"rckalign/internal/costmodel"
	"rckalign/internal/ss"
)

// ErrInvmapLength reports an invmap buffer whose length does not equal
// len2 — a kernel precondition violation. The aligners panic with an
// error wrapping this sentinel so a recovery boundary
// (tmalign.TryCompare) can surface it as a caller-visible error.
var ErrInvmapLength = errors.New("seqalign: invmap length must equal len2")

// Scorer returns the match score for aligning position i of chain 1 with
// position j of chain 2 (0-based).
type Scorer func(i, j int) float64

// Aligner holds reusable DP buffers for aligning chains up to a given
// size. It is not safe for concurrent use; each worker owns one.
type Aligner struct {
	val  []float64 // (len1+1) x (len2+1) DP values, row-major
	path []bool    // true = cell reached by a diagonal (match) move
	cols int

	// Affine (Gotoh) DP state, lazily sized by AlignAffine.
	am, ax, ay    []float64
	atm, atx, aty []int8

	// Smith-Waterman traceback directions, lazily sized by AlignLocal.
	dir []int8
}

// NewAligner returns an Aligner with no pre-allocated capacity; buffers
// grow on first use.
func NewAligner() *Aligner { return &Aligner{} }

// growSlice extends s to length n, reallocating geometrically (at least
// 2x the previous capacity) so a sequence of calls with ascending sizes
// amortises to O(1) reallocations instead of one per new maximum.
func growSlice[T any](s []T, n int) []T {
	if cap(s) >= n {
		return s[:n]
	}
	c := 2 * cap(s)
	if c < n {
		c = n
	}
	return make([]T, n, c)
}

func (a *Aligner) grow(len1, len2 int) {
	n := (len1 + 1) * (len2 + 1)
	a.val = growSlice(a.val, n)
	a.path = growSlice(a.path, n)
	a.cols = len2 + 1
}

// Align runs global DP over a len1 x len2 score matrix with the given
// (negative) gap-opening penalty and writes the resulting alignment into
// invmap: invmap[j] = i if position j of chain 2 is aligned to position i
// of chain 1, else -1. invmap must have length len2. ops (optional, may
// be nil) is charged len1*len2 DP cells.
//
// The recurrence and traceback replicate TM-align's NWDP_TM: a gap costs
// gapOpen only when the previous cell was reached by a match move, and
// ties prefer the diagonal, then the vertical (j-1) move.
func (a *Aligner) Align(len1, len2 int, score Scorer, gapOpen float64, invmap []int, ops *costmodel.Counter) {
	if len(invmap) != len2 {
		panic(fmt.Errorf("%w (Align: %d vs %d)", ErrInvmapLength, len(invmap), len2))
	}
	a.grow(len1, len2)
	cols := a.cols
	val, path := a.val, a.path

	for i := 0; i <= len1; i++ {
		val[i*cols] = 0
		path[i*cols] = false
	}
	for j := 0; j <= len2; j++ {
		val[j] = 0
		path[j] = false
	}

	for i := 1; i <= len1; i++ {
		row := i * cols
		prev := row - cols
		for j := 1; j <= len2; j++ {
			d := val[prev+j-1] + score(i-1, j-1)
			h := val[prev+j]
			if path[prev+j] {
				h += gapOpen
			}
			v := val[row+j-1]
			if path[row+j-1] {
				v += gapOpen
			}
			if d >= h && d >= v {
				path[row+j] = true
				val[row+j] = d
			} else {
				path[row+j] = false
				if v >= h {
					val[row+j] = v
				} else {
					val[row+j] = h
				}
			}
		}
	}
	ops.AddDP(len1 * len2)

	a.traceback(len1, len2, gapOpen, invmap)
}

// AlignMatrix is Align over a dense row-major len1 x len2 score matrix
// instead of a Scorer callback. It produces exactly the same alignment
// and DP values as Align with score(i, j) = mat[i*len2+j]; the inner
// loop reads the matrix row directly and carries the left/diagonal DP
// cells in registers, so per-cell work has no function call, no
// multiplication for indexing and no bounds checks. This is the hot
// path of the TM-align DP refinement loop, where the score matrix is
// precomputed from distances anyway.
func (a *Aligner) AlignMatrix(len1, len2 int, mat []float64, gapOpen float64, invmap []int, ops *costmodel.Counter) {
	if len(invmap) != len2 {
		panic(fmt.Errorf("%w (AlignMatrix: %d vs %d)", ErrInvmapLength, len(invmap), len2))
	}
	if len1 > 0 && len2 > 0 {
		_ = mat[len1*len2-1] // one bounds check up front for the whole fill
	}
	a.grow(len1, len2)
	cols := a.cols
	val, path := a.val, a.path

	for i := 0; i <= len1; i++ {
		val[i*cols] = 0
		path[i*cols] = false
	}
	for j := 0; j <= len2; j++ {
		val[j] = 0
		path[j] = false
	}

	for i := 1; i <= len1; i++ {
		rowVal := val[i*cols : i*cols+cols]
		rowPath := path[i*cols : i*cols+cols]
		prevVal := val[(i-1)*cols : i*cols]
		prevPath := path[(i-1)*cols : i*cols]
		srow := mat[(i-1)*len2 : (i-1)*len2+len2]
		vdiag := prevVal[0] // val[prev + (j-1)]
		vleft := rowVal[0]  // val[row + (j-1)]
		pleft := rowPath[0]
		for j := 1; j <= len2; j++ {
			d := vdiag + srow[j-1]
			h := prevVal[j]
			if prevPath[j] {
				h += gapOpen
			}
			v := vleft
			if pleft {
				v += gapOpen
			}
			var cur float64
			var curDiag bool
			if d >= h && d >= v {
				curDiag = true
				cur = d
			} else {
				if v >= h {
					cur = v
				} else {
					cur = h
				}
			}
			rowVal[j] = cur
			rowPath[j] = curDiag
			vdiag = prevVal[j]
			vleft = cur
			pleft = curDiag
		}
	}
	ops.AddDP(len1 * len2)

	a.traceback(len1, len2, gapOpen, invmap)
}

// traceback recovers the NWDP_TM alignment from the filled val/path
// tables into invmap (shared by Align and AlignMatrix; tie-breaking
// prefers the diagonal, then the vertical move, as in the reference).
func (a *Aligner) traceback(len1, len2 int, gapOpen float64, invmap []int) {
	cols := a.cols
	val, path := a.val, a.path
	for j := range invmap {
		invmap[j] = -1
	}
	i, j := len1, len2
	for i > 0 && j > 0 {
		if path[i*cols+j] {
			invmap[j-1] = i - 1
			i--
			j--
		} else {
			h := val[(i-1)*cols+j]
			if path[(i-1)*cols+j] {
				h += gapOpen
			}
			v := val[i*cols+j-1]
			if path[i*cols+j-1] {
				v += gapOpen
			}
			if v >= h {
				j--
			} else {
				i--
			}
		}
	}
}

// AlignSS aligns two secondary structure strings (score 1 for identical
// classes, 0 otherwise) with TM-align's gap opening of -1.
func (a *Aligner) AlignSS(sec1, sec2 []ss.Type, invmap []int, ops *costmodel.Counter) {
	a.Align(len(sec1), len(sec2), func(i, j int) float64 {
		if sec1[i] == sec2[j] {
			return 1
		}
		return 0
	}, -1.0, invmap, ops)
}

// Score returns the total DP score of the final alignment stored in
// invmap under the given scorer (gaps score 0, matching NWDP_TM's model
// of free extension after opening; opening penalties are not recomputed).
func Score(invmap []int, score Scorer) float64 {
	var s float64
	for j, i := range invmap {
		if i >= 0 {
			s += score(i, j)
		}
	}
	return s
}

// AlignedLen returns the number of aligned pairs in invmap.
func AlignedLen(invmap []int) int {
	n := 0
	for _, i := range invmap {
		if i >= 0 {
			n++
		}
	}
	return n
}

// IsMonotonic reports whether invmap is a valid global alignment: the
// aligned chain-1 indices are strictly increasing along j and within
// [0, len1).
func IsMonotonic(invmap []int, len1 int) bool {
	last := -1
	for _, i := range invmap {
		if i < 0 {
			continue
		}
		if i <= last || i >= len1 {
			return false
		}
		last = i
	}
	return true
}

// GaplessThreading enumerates all diagonal (ungapped) alignments of a
// chain of len1 against a chain of len2 and calls visit with each offset's
// overlap range. For offset k, chain-2 position j aligns to chain-1
// position j+k for j in [lo, hi). Offsets run from -(len2-minOverlap) to
// len1-minOverlap, and every visited alignment has at least minOverlap
// pairs.
//
// When minOverlap exceeds min(len1, len2), no diagonal of the two chains
// can contain minOverlap pairs, so visit is deliberately never called —
// the offset range formula alone would still enumerate offsets (it only
// guarantees each chain individually spans minOverlap positions, not
// that their overlap does), so this case returns early. Callers probing
// with a fixed fragment length rely on this zero-visit contract for
// chains shorter than the fragment.
func GaplessThreading(len1, len2, minOverlap int, visit func(k, lo, hi int)) {
	if minOverlap < 1 {
		minOverlap = 1
	}
	if minOverlap > len1 || minOverlap > len2 {
		return
	}
	// Within the offset range the overlap window [lo, hi) always holds at
	// least minOverlap pairs (min(len1-k, len2+k, len1, len2) >= minOverlap
	// follows from the range bounds); the guard below is kept as a
	// defensive invariant check only.
	for k := -(len2 - minOverlap); k <= len1-minOverlap; k++ {
		lo := 0
		if k < 0 {
			lo = -k
		}
		hi := len2
		if len1-k < hi {
			hi = len1 - k
		}
		if hi-lo >= minOverlap {
			visit(k, lo, hi)
		}
	}
}
