package seqalign

import (
	"errors"
	"math/rand"
	"testing"

	"rckalign/internal/costmodel"
)

// bruteForceAffine enumerates all global alignments under the affine
// objective: match scores plus gapOpen + k*gapExtend per maximal gap run
// of length k.
func bruteForceAffine(len1, len2 int, score Scorer, gapOpen, gapExtend float64) float64 {
	best := -1e18
	// state: 0 = none/match, 1 = in gap consuming chain1, 2 = chain2.
	var rec func(i, j, state int, acc float64)
	rec = func(i, j, state int, acc float64) {
		if i == len1 && j == len2 {
			if acc > best {
				best = acc
			}
			return
		}
		if i < len1 && j < len2 {
			rec(i+1, j+1, 0, acc+score(i, j))
		}
		if i < len1 {
			pen := gapExtend
			if state != 1 {
				pen += gapOpen
			}
			rec(i+1, j, 1, acc+pen)
		}
		if j < len2 {
			pen := gapExtend
			if state != 2 {
				pen += gapOpen
			}
			rec(i, j+1, 2, acc+pen)
		}
	}
	rec(0, 0, 0, 0)
	return best
}

func TestAffineMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	a := NewAligner()
	for trial := 0; trial < 50; trial++ {
		len1 := 1 + rng.Intn(5)
		len2 := 1 + rng.Intn(5)
		mtx := make([]float64, len1*len2)
		for i := range mtx {
			mtx[i] = rng.Float64()*3 - 1
		}
		score := func(i, j int) float64 { return mtx[i*len2+j] }
		gapOpen := -rng.Float64() * 2
		gapExtend := -rng.Float64() * 0.5
		want := bruteForceAffine(len1, len2, score, gapOpen, gapExtend)
		invmap := make([]int, len2)
		got := a.AlignAffine(len1, len2, score, gapOpen, gapExtend, invmap, nil)
		if diff := got - want; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("trial %d: affine DP = %v, brute = %v (len %dx%d open %v ext %v)",
				trial, got, want, len1, len2, gapOpen, gapExtend)
		}
		if !IsMonotonic(invmap, len1) {
			t.Fatalf("trial %d: invalid alignment %v", trial, invmap)
		}
	}
}

// TestAffineAlignmentScoreConsistent replays the returned alignment
// under the affine objective and checks it achieves the reported score.
func TestAffineAlignmentScoreConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	a := NewAligner()
	for trial := 0; trial < 20; trial++ {
		len1 := 2 + rng.Intn(20)
		len2 := 2 + rng.Intn(20)
		mtx := make([]float64, len1*len2)
		for i := range mtx {
			mtx[i] = rng.Float64()*2 - 0.6
		}
		score := func(i, j int) float64 { return mtx[i*len2+j] }
		gapOpen, gapExtend := -1.2, -0.2
		invmap := make([]int, len2)
		got := a.AlignAffine(len1, len2, score, gapOpen, gapExtend, invmap, nil)

		// Recompute the alignment's affine cost from invmap.
		acc := 0.0
		prevI := -1
		firstPair := true
		lastJ := -1
		for j, i := range invmap {
			if i < 0 {
				continue
			}
			acc += score(i, j)
			// Gap in chain 2 (skipped chain-1 residues between pairs).
			skip1 := i - prevI - 1
			if firstPair {
				skip1 = i // leading chain-1 residues
			}
			if skip1 > 0 {
				acc += gapOpen + float64(skip1)*gapExtend
			}
			skip2 := j - lastJ - 1
			if firstPair {
				skip2 = j
			}
			if skip2 > 0 {
				acc += gapOpen + float64(skip2)*gapExtend
			}
			prevI = i
			lastJ = j
			firstPair = false
		}
		if firstPair {
			continue // no aligned pairs: scoring convention ambiguous
		}
		// Trailing gaps.
		if tail1 := len1 - 1 - prevI; tail1 > 0 {
			acc += gapOpen + float64(tail1)*gapExtend
		}
		if tail2 := len2 - 1 - lastJ; tail2 > 0 {
			acc += gapOpen + float64(tail2)*gapExtend
		}
		if diff := got - acc; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("trial %d: reported %v, alignment scores %v (invmap %v)", trial, got, acc, invmap)
		}
	}
}

func TestAffineChargesOps(t *testing.T) {
	var ops costmodel.Counter
	a := NewAligner()
	inv := make([]int, 4)
	a.AlignAffine(5, 4, func(i, j int) float64 { return 1 }, -1, -0.1, inv, &ops)
	if ops.DPCells != 60 { // 3 matrices x 20 cells
		t.Errorf("DPCells = %d, want 60", ops.DPCells)
	}
}

func TestAffinePanicsOnBadInvmap(t *testing.T) {
	defer func() {
		rec := recover()
		err, ok := rec.(error)
		if !ok || !errors.Is(err, ErrInvmapLength) {
			t.Errorf("panic value %v does not wrap ErrInvmapLength", rec)
		}
	}()
	NewAligner().AlignAffine(3, 4, func(i, j int) float64 { return 0 }, -1, -1, make([]int, 2), nil)
}
