package seqalign

import (
	"math/rand"
	"testing"

	"rckalign/internal/costmodel"
)

// TestGrowSliceGeometric pins the amortised-growth contract of the DP
// scratch: when a buffer must be reallocated, capacity at least doubles,
// and a request that fits the existing capacity never reallocates.
func TestGrowSliceGeometric(t *testing.T) {
	a := NewAligner()
	a.grow(10, 10) // 121 cells
	c1 := cap(a.val)
	if c1 < 121 {
		t.Fatalf("cap after grow(10,10) = %d, want >= 121", c1)
	}
	// One cell over capacity: geometric growth must at least double,
	// not allocate the exact new size.
	a.grow(11, 11) // 144 cells — under 2*121
	if cap(a.val) < 2*c1 {
		t.Errorf("cap after grow(11,11) = %d, want >= %d (geometric doubling)", cap(a.val), 2*c1)
	}
	// A smaller request reuses the buffer.
	c2 := cap(a.val)
	a.grow(5, 5)
	if cap(a.val) != c2 {
		t.Errorf("grow(5,5) reallocated: cap %d -> %d", c2, cap(a.val))
	}
	if len(a.val) != 36 || len(a.path) != 36 {
		t.Errorf("grow(5,5) lengths = %d/%d, want 36", len(a.val), len(a.path))
	}

	// A jump far beyond double allocates the requested size.
	s := growSlice([]float64(nil), 7)
	if len(s) != 7 || cap(s) < 7 {
		t.Fatalf("growSlice(nil, 7): len %d cap %d", len(s), cap(s))
	}
	s = growSlice(s, 1000)
	if len(s) != 1000 || cap(s) < 1000 {
		t.Errorf("growSlice to 1000: len %d cap %d", len(s), cap(s))
	}
}

// TestAlignerReuseNoAllocs is the allocation regression for the shared
// scratch: once an Aligner has seen its largest problem, further calls
// of any variant at that size or below must not allocate.
func TestAlignerReuseNoAllocs(t *testing.T) {
	a := NewAligner()
	const len1, len2 = 90, 70
	score := func(i, j int) float64 {
		if (i+j)%3 == 0 {
			return 1
		}
		return -0.2
	}
	mat := make([]float64, len1*len2)
	for i := 0; i < len1; i++ {
		for j := 0; j < len2; j++ {
			mat[i*len2+j] = score(i, j)
		}
	}
	invmap := make([]int, len2)

	// Warm every variant so all lazily-sized buffers exist. AlignLocal is
	// exempt from the zero-alloc contract: it returns a freshly-built
	// Pairs slice by design.
	a.Align(len1, len2, score, -0.6, invmap, nil)
	a.AlignMatrix(len1, len2, mat, -0.6, invmap, nil)
	a.AlignAffine(len1, len2, score, -1.0, -0.1, invmap, nil)

	cases := []struct {
		name string
		run  func()
	}{
		{"Align", func() { a.Align(len1, len2, score, -0.6, invmap, nil) }},
		{"AlignSmaller", func() { a.Align(30, 20, score, -0.6, invmap[:20], nil) }},
		{"AlignMatrix", func() { a.AlignMatrix(len1, len2, mat, -0.6, invmap, nil) }},
		{"AlignAffine", func() { a.AlignAffine(len1, len2, score, -1.0, -0.1, invmap, nil) }},
	}
	for _, tc := range cases {
		if allocs := testing.AllocsPerRun(10, tc.run); allocs != 0 {
			t.Errorf("%s on a warm Aligner: %.1f allocs/run, want 0", tc.name, allocs)
		}
	}
}

// TestGaplessThreadingZeroVisit pins the documented contract: when
// minOverlap exceeds the shorter chain, no diagonal can satisfy it and
// the callback is never invoked.
func TestGaplessThreadingZeroVisit(t *testing.T) {
	cases := []struct{ len1, len2, minOverlap int }{
		{5, 10, 6},  // minOverlap > len1
		{10, 5, 6},  // minOverlap > len2
		{3, 3, 4},   // minOverlap > both
		{0, 10, 1},  // empty chain 1
		{10, 0, 1},  // empty chain 2
		{7, 9, 100}, // far beyond both
	}
	for _, tc := range cases {
		visits := 0
		GaplessThreading(tc.len1, tc.len2, tc.minOverlap, func(k, lo, hi int) { visits++ })
		if visits != 0 {
			t.Errorf("GaplessThreading(%d, %d, %d): %d visits, want 0",
				tc.len1, tc.len2, tc.minOverlap, visits)
		}
	}
	// Boundary: minOverlap exactly min(len1, len2) yields exactly one
	// full-overlap diagonal per offset that fits.
	visits := 0
	GaplessThreading(5, 5, 5, func(k, lo, hi int) {
		visits++
		if k != 0 || lo != 0 || hi != 5 {
			t.Errorf("full-overlap visit = (%d, %d, %d), want (0, 0, 5)", k, lo, hi)
		}
	})
	if visits != 1 {
		t.Errorf("GaplessThreading(5, 5, 5): %d visits, want 1", visits)
	}
}

// TestAlignMatrixMatchesAlign verifies the dense-matrix fast path is a
// pure re-expression of Align: identical alignments and identical DP
// charges on random score matrices, with and without a gap penalty,
// including degenerate empty dimensions.
func TestAlignMatrixMatchesAlign(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	dims := []struct{ len1, len2 int }{
		{1, 1}, {1, 7}, {7, 1}, {13, 17}, {40, 40}, {64, 31},
		{0, 5}, {5, 0}, {0, 0},
	}
	for _, gapOpen := range []float64{0, -0.6, -2.5} {
		for _, d := range dims {
			mat := make([]float64, d.len1*d.len2)
			for i := range mat {
				mat[i] = rng.NormFloat64()
			}
			score := func(i, j int) float64 { return mat[i*d.len2+j] }

			a1, a2 := NewAligner(), NewAligner()
			inv1 := make([]int, d.len2)
			inv2 := make([]int, d.len2)
			var ops1, ops2 costmodel.Counter
			a1.Align(d.len1, d.len2, score, gapOpen, inv1, &ops1)
			a2.AlignMatrix(d.len1, d.len2, mat, gapOpen, inv2, &ops2)

			for j := range inv1 {
				if inv1[j] != inv2[j] {
					t.Fatalf("dims %dx%d gap %g: invmap differs at j=%d: %d vs %d",
						d.len1, d.len2, gapOpen, j, inv1[j], inv2[j])
				}
			}
			if ops1.DPCells != ops2.DPCells {
				t.Errorf("dims %dx%d gap %g: DP charge differs: %d vs %d",
					d.len1, d.len2, gapOpen, ops1.DPCells, ops2.DPCells)
			}
			if !IsMonotonic(inv1, d.len1) {
				t.Errorf("dims %dx%d gap %g: non-monotonic alignment", d.len1, d.len2, gapOpen)
			}
		}
	}
}

// FuzzAlign feeds arbitrary score matrices and gap penalties through the
// global DP and asserts the structural invariant every caller relies on:
// the resulting invmap is a valid monotonic alignment.
func FuzzAlign(f *testing.F) {
	f.Add(int64(1), 8, 6, -0.6)
	f.Add(int64(2), 1, 1, 0.0)
	f.Add(int64(3), 20, 3, -3.0)
	f.Add(int64(4), 5, 40, 0.5) // positive "penalty" must still align validly
	f.Fuzz(func(t *testing.T, seed int64, len1, len2 int, gapOpen float64) {
		if len1 < 0 || len2 < 0 || len1 > 80 || len2 > 80 {
			t.Skip()
		}
		if gapOpen != gapOpen || gapOpen < -1e6 || gapOpen > 1e6 {
			t.Skip() // NaN/extreme penalties are out of contract
		}
		rng := rand.New(rand.NewSource(seed))
		mat := make([]float64, len1*len2)
		for i := range mat {
			mat[i] = rng.NormFloat64() * 3
		}
		a := NewAligner()
		invmap := make([]int, len2)
		a.AlignMatrix(len1, len2, mat, gapOpen, invmap, nil)
		if !IsMonotonic(invmap, len1) {
			t.Fatalf("AlignMatrix(%dx%d, gap %g) produced a non-monotonic invmap: %v",
				len1, len2, gapOpen, invmap)
		}
		inv2 := make([]int, len2)
		a.Align(len1, len2, func(i, j int) float64 { return mat[i*len2+j] }, gapOpen, inv2, nil)
		for j := range invmap {
			if invmap[j] != inv2[j] {
				t.Fatalf("Align and AlignMatrix disagree at j=%d: %d vs %d", j, inv2[j], invmap[j])
			}
		}
	})
}
