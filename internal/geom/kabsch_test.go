package geom

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// randomCloud generates n points in a box with the given rng.
func randomCloud(rng *rand.Rand, n int) []Vec3 {
	pts := make([]Vec3, n)
	for i := range pts {
		pts[i] = V(rng.Float64()*20-10, rng.Float64()*20-10, rng.Float64()*20-10)
	}
	return pts
}

func TestSuperposeIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p := randomCloud(rng, 30)
	tr, rmsd := Superpose(p, p)
	if rmsd > 1e-5 {
		t.Errorf("self superposition RMSD = %v, want ~0", rmsd)
	}
	if !tr.R.IsRotation(1e-6) {
		t.Error("returned matrix is not a rotation")
	}
	for _, pt := range p {
		if !vecAlmostEq(tr.Apply(pt), pt, 1e-6) {
			t.Fatalf("self superposition moved a point: %v -> %v", pt, tr.Apply(pt))
		}
	}
}

// TestSuperposeRecoversRigidMotion is the core property: for a random
// rigid motion g, Superpose(p, g(p)) must recover g (zero RMSD).
func TestSuperposeRecoversRigidMotion(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 50; trial++ {
		n := 4 + rng.Intn(100)
		p := randomCloud(rng, n)
		g := Transform{
			R: AxisAngle(V(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()), rng.Float64()*2*math.Pi),
			T: V(rng.NormFloat64()*5, rng.NormFloat64()*5, rng.NormFloat64()*5),
		}
		q := make([]Vec3, n)
		g.ApplyAll(q, p)

		tr, rmsd := Superpose(p, q)
		if rmsd > 1e-6 {
			t.Fatalf("trial %d: rigid motion not recovered, RMSD = %v", trial, rmsd)
		}
		if !tr.R.IsRotation(1e-6) {
			t.Fatalf("trial %d: result is not a rotation", trial)
		}
		for i := range p {
			if !vecAlmostEq(tr.Apply(p[i]), q[i], 1e-5) {
				t.Fatalf("trial %d: point %d not mapped: %v vs %v", trial, i, tr.Apply(p[i]), q[i])
			}
		}
	}
}

// TestSuperposeOptimal compares against brute-force orientation search on
// a small problem: no sampled rotation may beat the analytic optimum.
func TestSuperposeOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	p := randomCloud(rng, 12)
	q := randomCloud(rng, 12)
	_, best := Superpose(p, q)

	cp, cq := Centroid(p), Centroid(q)
	pc := make([]Vec3, len(p))
	qc := make([]Vec3, len(q))
	for i := range p {
		pc[i] = p[i].Sub(cp)
		qc[i] = q[i].Sub(cq)
	}
	tmp := make([]Vec3, len(p))
	for trial := 0; trial < 3000; trial++ {
		r := AxisAngle(V(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()), rng.Float64()*2*math.Pi)
		for i := range pc {
			tmp[i] = r.MulVec(pc[i])
		}
		if rmsd := RMSD(tmp, qc); rmsd < best-1e-9 {
			t.Fatalf("random rotation beats Superpose: %v < %v", rmsd, best)
		}
	}
}

func TestSuperposeNoReflection(t *testing.T) {
	// A mirrored point set cannot be superposed by a proper rotation;
	// the result must still be a rotation (det +1), not a reflection.
	rng := rand.New(rand.NewSource(6))
	p := randomCloud(rng, 25)
	q := make([]Vec3, len(p))
	for i, pt := range p {
		q[i] = V(-pt[0], pt[1], pt[2]) // mirror through x=0
	}
	tr, rmsd := Superpose(p, q)
	if !tr.R.IsRotation(1e-6) {
		t.Errorf("det = %v; reflections are not allowed", tr.R.Det())
	}
	if rmsd < 0.1 {
		t.Errorf("mirrored cloud superposed too well (rmsd=%v): likely a reflection", rmsd)
	}
}

func TestSuperposeDegenerate(t *testing.T) {
	// Collinear points: rotation about the line is arbitrary but the fit
	// must still be exact and proper.
	p := []Vec3{V(0, 0, 0), V(1, 0, 0), V(2, 0, 0), V(3, 0, 0)}
	q := []Vec3{V(5, 5, 5), V(5, 6, 5), V(5, 7, 5), V(5, 8, 5)}
	tr, rmsd := Superpose(p, q)
	if rmsd > 1e-6 {
		t.Errorf("collinear superposition RMSD = %v", rmsd)
	}
	if !tr.R.IsRotation(1e-6) {
		t.Error("collinear superposition returned a non-rotation")
	}
	// Single point: pure translation.
	tr, rmsd = Superpose([]Vec3{V(1, 2, 3)}, []Vec3{V(4, 5, 6)})
	if rmsd > 1e-9 || !vecAlmostEq(tr.Apply(V(1, 2, 3)), V(4, 5, 6), 1e-9) {
		t.Errorf("single point superposition failed: rmsd=%v", rmsd)
	}
}

func TestSuperposePanics(t *testing.T) {
	defer func() {
		rec := recover()
		if rec == nil {
			t.Fatal("Superpose with mismatched lengths should panic")
		}
		// The panic value must be an error wrapping the typed sentinel,
		// so tmalign.TryCompare can recover it.
		err, ok := rec.(error)
		if !ok || !errors.Is(err, ErrPointMismatch) {
			t.Errorf("panic value %v does not wrap ErrPointMismatch", rec)
		}
	}()
	Superpose([]Vec3{{}}, []Vec3{{}, {}})
}

func TestSuperposeEmptyPanics(t *testing.T) {
	defer func() {
		rec := recover()
		err, ok := rec.(error)
		if !ok || !errors.Is(err, ErrNoPoints) {
			t.Errorf("panic value %v does not wrap ErrNoPoints", rec)
		}
	}()
	Superpose(nil, nil)
}

func TestRMSDKnown(t *testing.T) {
	p := []Vec3{V(0, 0, 0), V(0, 0, 0)}
	q := []Vec3{V(3, 0, 0), V(0, 4, 0)}
	// mean squared = (9 + 16)/2 = 12.5
	if got := RMSD(p, q); !almostEq(got, math.Sqrt(12.5), 1e-12) {
		t.Errorf("RMSD = %v", got)
	}
	if RMSD(nil, nil) != 0 {
		t.Error("RMSD of empty sets should be 0")
	}
}

func TestSuperposedRMSDNotWorseThanRaw(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		p := randomCloud(rng, 10+rng.Intn(40))
		q := randomCloud(rng, len(p))
		if s, r := SuperposedRMSD(p, q), RMSD(p, q); s > r+1e-9 {
			t.Fatalf("superposed RMSD %v exceeds raw RMSD %v", s, r)
		}
	}
}

func BenchmarkSuperpose150(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	p := randomCloud(rng, 150)
	q := randomCloud(rng, 150)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Superpose(p, q)
	}
}
