// Package geom provides the small dense linear algebra needed by protein
// structure comparison: 3-vectors, 3x3 matrices, rigid transforms and the
// Kabsch/Horn optimal superposition of point sets.
//
// All types are plain value types so they can be embedded in hot loops
// without allocation.
package geom

import "math"

// Vec3 is a point or direction in 3-space.
type Vec3 [3]float64

// V constructs a Vec3.
func V(x, y, z float64) Vec3 { return Vec3{x, y, z} }

// Add returns a + b.
func (a Vec3) Add(b Vec3) Vec3 { return Vec3{a[0] + b[0], a[1] + b[1], a[2] + b[2]} }

// Sub returns a - b.
func (a Vec3) Sub(b Vec3) Vec3 { return Vec3{a[0] - b[0], a[1] - b[1], a[2] - b[2]} }

// Scale returns s*a.
func (a Vec3) Scale(s float64) Vec3 { return Vec3{s * a[0], s * a[1], s * a[2]} }

// Dot returns the inner product a.b.
func (a Vec3) Dot(b Vec3) float64 { return a[0]*b[0] + a[1]*b[1] + a[2]*b[2] }

// Cross returns the vector cross product a x b.
func (a Vec3) Cross(b Vec3) Vec3 {
	return Vec3{
		a[1]*b[2] - a[2]*b[1],
		a[2]*b[0] - a[0]*b[2],
		a[0]*b[1] - a[1]*b[0],
	}
}

// Norm returns the Euclidean length of a.
func (a Vec3) Norm() float64 { return math.Sqrt(a.Dot(a)) }

// Norm2 returns the squared Euclidean length of a.
func (a Vec3) Norm2() float64 { return a.Dot(a) }

// Dist returns the Euclidean distance |a-b|.
func (a Vec3) Dist(b Vec3) float64 { return a.Sub(b).Norm() }

// Dist2 returns the squared Euclidean distance |a-b|^2.
func (a Vec3) Dist2(b Vec3) float64 { return a.Sub(b).Norm2() }

// Unit returns a scaled to unit length. The zero vector is returned
// unchanged.
func (a Vec3) Unit() Vec3 {
	n := a.Norm()
	if n == 0 {
		return a
	}
	return a.Scale(1 / n)
}

// Centroid returns the arithmetic mean of pts. It returns the zero vector
// for an empty slice.
func Centroid(pts []Vec3) Vec3 {
	if len(pts) == 0 {
		return Vec3{}
	}
	var c Vec3
	for _, p := range pts {
		c = c.Add(p)
	}
	return c.Scale(1 / float64(len(pts)))
}

// Mat3 is a 3x3 matrix in row-major order.
type Mat3 [3][3]float64

// Identity returns the 3x3 identity matrix.
func Identity() Mat3 {
	return Mat3{{1, 0, 0}, {0, 1, 0}, {0, 0, 1}}
}

// MulVec returns m * v.
func (m Mat3) MulVec(v Vec3) Vec3 {
	return Vec3{
		m[0][0]*v[0] + m[0][1]*v[1] + m[0][2]*v[2],
		m[1][0]*v[0] + m[1][1]*v[1] + m[1][2]*v[2],
		m[2][0]*v[0] + m[2][1]*v[1] + m[2][2]*v[2],
	}
}

// Mul returns the matrix product m * n.
func (m Mat3) Mul(n Mat3) Mat3 {
	var r Mat3
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			r[i][j] = m[i][0]*n[0][j] + m[i][1]*n[1][j] + m[i][2]*n[2][j]
		}
	}
	return r
}

// Transpose returns m^T.
func (m Mat3) Transpose() Mat3 {
	var r Mat3
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			r[i][j] = m[j][i]
		}
	}
	return r
}

// Det returns the determinant of m.
func (m Mat3) Det() float64 {
	return m[0][0]*(m[1][1]*m[2][2]-m[1][2]*m[2][1]) -
		m[0][1]*(m[1][0]*m[2][2]-m[1][2]*m[2][0]) +
		m[0][2]*(m[1][0]*m[2][1]-m[1][1]*m[2][0])
}

// IsRotation reports whether m is orthonormal with determinant +1 within
// tolerance tol.
func (m Mat3) IsRotation(tol float64) bool {
	mt := m.Mul(m.Transpose())
	id := Identity()
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if math.Abs(mt[i][j]-id[i][j]) > tol {
				return false
			}
		}
	}
	return math.Abs(m.Det()-1) <= tol
}

// RotX returns the rotation matrix for angle a (radians) about the x axis.
func RotX(a float64) Mat3 {
	c, s := math.Cos(a), math.Sin(a)
	return Mat3{{1, 0, 0}, {0, c, -s}, {0, s, c}}
}

// RotY returns the rotation matrix for angle a (radians) about the y axis.
func RotY(a float64) Mat3 {
	c, s := math.Cos(a), math.Sin(a)
	return Mat3{{c, 0, s}, {0, 1, 0}, {-s, 0, c}}
}

// RotZ returns the rotation matrix for angle a (radians) about the z axis.
func RotZ(a float64) Mat3 {
	c, s := math.Cos(a), math.Sin(a)
	return Mat3{{c, -s, 0}, {s, c, 0}, {0, 0, 1}}
}

// AxisAngle returns the rotation of angle a (radians) about unit axis u.
func AxisAngle(u Vec3, a float64) Mat3 {
	u = u.Unit()
	c, s := math.Cos(a), math.Sin(a)
	t := 1 - c
	x, y, z := u[0], u[1], u[2]
	return Mat3{
		{t*x*x + c, t*x*y - s*z, t*x*z + s*y},
		{t*x*y + s*z, t*y*y + c, t*y*z - s*x},
		{t*x*z - s*y, t*y*z + s*x, t*z*z + c},
	}
}

// Transform is a rigid-body motion x -> R*x + T.
type Transform struct {
	R Mat3
	T Vec3
}

// IdentityTransform returns the identity rigid motion.
func IdentityTransform() Transform { return Transform{R: Identity()} }

// Apply maps a single point through the transform.
func (t Transform) Apply(v Vec3) Vec3 { return t.R.MulVec(v).Add(t.T) }

// ApplyAll maps pts through the transform into dst, which must have the
// same length as pts (dst may alias pts).
//
// The rotation and translation are hoisted into scalars and dst is
// re-sliced to the input length so the inner loop runs without struct
// copies or bounds checks; the per-component arithmetic is evaluated in
// exactly Apply's order, so results are bit-identical to mapping Apply
// over pts.
func (t Transform) ApplyAll(dst, pts []Vec3) {
	r00, r01, r02 := t.R[0][0], t.R[0][1], t.R[0][2]
	r10, r11, r12 := t.R[1][0], t.R[1][1], t.R[1][2]
	r20, r21, r22 := t.R[2][0], t.R[2][1], t.R[2][2]
	tx, ty, tz := t.T[0], t.T[1], t.T[2]
	dst = dst[:len(pts)]
	for i := range pts {
		p := &pts[i]
		x, y, z := p[0], p[1], p[2]
		dst[i] = Vec3{
			r00*x + r01*y + r02*z + tx,
			r10*x + r11*y + r12*z + ty,
			r20*x + r21*y + r22*z + tz,
		}
	}
}

// Compose returns the transform equivalent to applying u first, then t.
func (t Transform) Compose(u Transform) Transform {
	return Transform{R: t.R.Mul(u.R), T: t.R.MulVec(u.T).Add(t.T)}
}

// Inverse returns the inverse rigid motion.
func (t Transform) Inverse() Transform {
	rt := t.R.Transpose()
	return Transform{R: rt, T: rt.MulVec(t.T).Scale(-1)}
}
