package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func vecAlmostEq(a, b Vec3, tol float64) bool {
	return almostEq(a[0], b[0], tol) && almostEq(a[1], b[1], tol) && almostEq(a[2], b[2], tol)
}

func TestVecBasicOps(t *testing.T) {
	a := V(1, 2, 3)
	b := V(4, -5, 6)
	if got := a.Add(b); got != V(5, -3, 9) {
		t.Errorf("Add = %v", got)
	}
	if got := a.Sub(b); got != V(-3, 7, -3) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Scale(2); got != V(2, 4, 6) {
		t.Errorf("Scale = %v", got)
	}
	if got := a.Dot(b); got != 4-10+18 {
		t.Errorf("Dot = %v", got)
	}
	if got := a.Norm2(); got != 14 {
		t.Errorf("Norm2 = %v", got)
	}
	if !almostEq(a.Norm(), math.Sqrt(14), 1e-12) {
		t.Errorf("Norm = %v", a.Norm())
	}
}

func TestCrossOrthogonal(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz float64) bool {
		bound := func(v float64) float64 {
			if math.IsNaN(v) {
				return 0
			}
			return math.Mod(v, 1e3)
		}
		a := V(bound(ax), bound(ay), bound(az))
		b := V(bound(bx), bound(by), bound(bz))
		c := a.Cross(b)
		return almostEq(c.Dot(a), 0, 1e-6*(1+a.Norm2())*(1+b.Norm2())) &&
			almostEq(c.Dot(b), 0, 1e-6*(1+a.Norm2())*(1+b.Norm2()))
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestCrossRightHanded(t *testing.T) {
	got := V(1, 0, 0).Cross(V(0, 1, 0))
	if got != V(0, 0, 1) {
		t.Errorf("x cross y = %v, want z", got)
	}
}

func TestUnit(t *testing.T) {
	u := V(3, 4, 0).Unit()
	if !vecAlmostEq(u, V(0.6, 0.8, 0), 1e-12) {
		t.Errorf("Unit = %v", u)
	}
	if z := (Vec3{}).Unit(); z != (Vec3{}) {
		t.Errorf("Unit of zero = %v, want zero", z)
	}
}

func TestCentroid(t *testing.T) {
	pts := []Vec3{V(0, 0, 0), V(2, 4, 6)}
	if c := Centroid(pts); c != V(1, 2, 3) {
		t.Errorf("Centroid = %v", c)
	}
	if c := Centroid(nil); c != (Vec3{}) {
		t.Errorf("Centroid(nil) = %v", c)
	}
}

func TestDist(t *testing.T) {
	if d := V(1, 1, 1).Dist(V(1, 1, 2)); !almostEq(d, 1, 1e-12) {
		t.Errorf("Dist = %v", d)
	}
	if d := V(0, 0, 0).Dist2(V(1, 2, 2)); !almostEq(d, 9, 1e-12) {
		t.Errorf("Dist2 = %v", d)
	}
}

func TestMat3Identity(t *testing.T) {
	id := Identity()
	v := V(1, -2, 3)
	if id.MulVec(v) != v {
		t.Error("identity MulVec changed the vector")
	}
	if id.Det() != 1 {
		t.Errorf("identity Det = %v", id.Det())
	}
	if !id.IsRotation(1e-12) {
		t.Error("identity should be a rotation")
	}
}

func TestMat3MulTranspose(t *testing.T) {
	m := RotZ(0.3).Mul(RotX(1.1))
	mt := m.Transpose()
	id := m.Mul(mt)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if !almostEq(id[i][j], want, 1e-12) {
				t.Fatalf("m * m^T [%d][%d] = %v", i, j, id[i][j])
			}
		}
	}
}

func TestRotationsAreRotations(t *testing.T) {
	for _, m := range []Mat3{RotX(0.7), RotY(-1.3), RotZ(2.9), AxisAngle(V(1, 2, 3), 0.5)} {
		if !m.IsRotation(1e-10) {
			t.Errorf("matrix %v is not a rotation", m)
		}
	}
}

func TestAxisAngleMatchesRotZ(t *testing.T) {
	a := AxisAngle(V(0, 0, 1), 0.8)
	b := RotZ(0.8)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if !almostEq(a[i][j], b[i][j], 1e-12) {
				t.Fatalf("AxisAngle z != RotZ at [%d][%d]: %v vs %v", i, j, a[i][j], b[i][j])
			}
		}
	}
}

func TestTransformApplyInverse(t *testing.T) {
	tr := Transform{R: RotY(0.9), T: V(1, 2, 3)}
	inv := tr.Inverse()
	f := func(x, y, z float64) bool {
		// Bound inputs: quick generates extreme floats that overflow.
		p := V(math.Mod(x, 1e6), math.Mod(y, 1e6), math.Mod(z, 1e6))
		if math.IsNaN(p[0]) || math.IsNaN(p[1]) || math.IsNaN(p[2]) {
			return true
		}
		return vecAlmostEq(inv.Apply(tr.Apply(p)), p, 1e-7*(1+p.Norm()))
	}
	cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(2))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestTransformCompose(t *testing.T) {
	a := Transform{R: RotX(0.4), T: V(1, 0, 0)}
	b := Transform{R: RotZ(-0.2), T: V(0, 2, 0)}
	p := V(0.5, -1, 2)
	got := a.Compose(b).Apply(p)
	want := a.Apply(b.Apply(p))
	if !vecAlmostEq(got, want, 1e-12) {
		t.Errorf("Compose mismatch: %v vs %v", got, want)
	}
}

func TestApplyAll(t *testing.T) {
	tr := Transform{R: RotZ(math.Pi / 2), T: V(0, 0, 1)}
	pts := []Vec3{V(1, 0, 0), V(0, 1, 0)}
	dst := make([]Vec3, 2)
	tr.ApplyAll(dst, pts)
	if !vecAlmostEq(dst[0], V(0, 1, 1), 1e-12) || !vecAlmostEq(dst[1], V(-1, 0, 1), 1e-12) {
		t.Errorf("ApplyAll = %v", dst)
	}
	// In-place aliasing must also work.
	tr.ApplyAll(pts, pts)
	if !vecAlmostEq(pts[0], V(0, 1, 1), 1e-12) {
		t.Errorf("in-place ApplyAll = %v", pts[0])
	}
}
