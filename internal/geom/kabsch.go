package geom

import (
	"errors"
	"fmt"
	"math"
)

// Kernel misuse sentinels. The superposition routines sit on the hot
// path of every comparison, so precondition violations still panic —
// but with errors wrapping these sentinels, so a recovery boundary
// (tmalign.TryCompare) can distinguish bad kernel input from a genuine
// bug and turn it into a caller-visible error.
var (
	// ErrPointMismatch reports point sets of different lengths.
	ErrPointMismatch = errors.New("geom: point sets differ in length")
	// ErrNoPoints reports a superposition over zero points.
	ErrNoPoints = errors.New("geom: superposition of empty point sets")
)

// Superpose computes the rigid transform t that, applied to the mobile
// point set p, minimises the RMSD to the fixed point set q
// (min over rotations R, translations T of sum |R*p_i + T - q_i|^2).
// The two slices must have equal length n >= 1. It returns the optimal
// transform and the minimal RMSD.
//
// The rotation is found with Horn's quaternion method: the optimal
// rotation is the eigenvector for the largest eigenvalue of a symmetric
// 4x4 matrix built from the covariance of the centred point sets. Unlike
// plain Kabsch/SVD this never produces a reflection.
func Superpose(p, q []Vec3) (Transform, float64) {
	if len(p) != len(q) {
		panic(fmt.Errorf("%w (Superpose: %d vs %d)", ErrPointMismatch, len(p), len(q)))
	}
	n := len(p)
	if n == 0 {
		panic(fmt.Errorf("%w (Superpose)", ErrNoPoints))
	}
	// Centroids, accumulated axis-wise in Centroid's summation order so
	// the scalar loop is bit-identical to Centroid(p)/Centroid(q).
	q = q[:n]
	var cpx, cpy, cpz, cqx, cqy, cqz float64
	for i := 0; i < n; i++ {
		a, b := &p[i], &q[i]
		cpx += a[0]
		cpy += a[1]
		cpz += a[2]
		cqx += b[0]
		cqy += b[1]
		cqz += b[2]
	}
	inv := 1 / float64(n)
	cpx *= inv
	cpy *= inv
	cpz *= inv
	cqx *= inv
	cqy *= inv
	cqz *= inv

	// Covariance matrix S = sum (p_i - cp) (q_i - cq)^T and the squared
	// spreads, accumulated in one pass. The nine matrix entries are
	// unrolled into scalar accumulators (each an independent addition
	// chain in the original's order, so sums are bit-identical) to keep
	// the hot loop free of array indexing.
	var s00, s01, s02, s10, s11, s12, s20, s21, s22 float64
	var ep, eq float64 // sum |p_i - cp|^2, sum |q_i - cq|^2
	for i := 0; i < n; i++ {
		pi, qi := &p[i], &q[i]
		ax, ay, az := pi[0]-cpx, pi[1]-cpy, pi[2]-cpz
		bx, by, bz := qi[0]-cqx, qi[1]-cqy, qi[2]-cqz
		ep += ax*ax + ay*ay + az*az
		eq += bx*bx + by*by + bz*bz
		s00 += ax * bx
		s01 += ax * by
		s02 += ax * bz
		s10 += ay * bx
		s11 += ay * by
		s12 += ay * bz
		s20 += az * bx
		s21 += az * by
		s22 += az * bz
	}
	s := Mat3{{s00, s01, s02}, {s10, s11, s12}, {s20, s21, s22}}

	// Horn's symmetric 4x4 key matrix.
	k := [4][4]float64{
		{s[0][0] + s[1][1] + s[2][2], s[1][2] - s[2][1], s[2][0] - s[0][2], s[0][1] - s[1][0]},
		{s[1][2] - s[2][1], s[0][0] - s[1][1] - s[2][2], s[0][1] + s[1][0], s[2][0] + s[0][2]},
		{s[2][0] - s[0][2], s[0][1] + s[1][0], -s[0][0] + s[1][1] - s[2][2], s[1][2] + s[2][1]},
		{s[0][1] - s[1][0], s[2][0] + s[0][2], s[1][2] + s[2][1], -s[0][0] - s[1][1] + s[2][2]},
	}
	lambda, quat := maxEigen4(k)

	r := quatToMat(quat)
	// Residual: E = ep + eq - 2*lambda (clamped, can go slightly negative
	// from rounding for exact matches).
	e := ep + eq - 2*lambda
	if e < 0 {
		e = 0
	}
	rmsd := math.Sqrt(e / float64(n))

	t := Transform{R: r}
	t.T = Vec3{cqx, cqy, cqz}.Sub(r.MulVec(Vec3{cpx, cpy, cpz}))
	return t, rmsd
}

// RMSD returns the root-mean-square deviation between two equal-length
// point sets without superposing them.
func RMSD(p, q []Vec3) float64 {
	if len(p) != len(q) {
		panic(fmt.Errorf("%w (RMSD: %d vs %d)", ErrPointMismatch, len(p), len(q)))
	}
	if len(p) == 0 {
		return 0
	}
	var s float64
	for i := range p {
		s += p[i].Dist2(q[i])
	}
	return math.Sqrt(s / float64(len(p)))
}

// SuperposedRMSD is a convenience wrapper returning only the minimal RMSD
// after optimal superposition.
func SuperposedRMSD(p, q []Vec3) float64 {
	_, r := Superpose(p, q)
	return r
}

// quatToMat converts a unit quaternion (w, x, y, z) to a rotation matrix.
func quatToMat(q [4]float64) Mat3 {
	w, x, y, z := q[0], q[1], q[2], q[3]
	return Mat3{
		{w*w + x*x - y*y - z*z, 2 * (x*y - w*z), 2 * (x*z + w*y)},
		{2 * (x*y + w*z), w*w - x*x + y*y - z*z, 2 * (y*z - w*x)},
		{2 * (x*z - w*y), 2 * (y*z + w*x), w*w - x*x - y*y + z*z},
	}
}

// maxEigen4 returns the largest eigenvalue of the symmetric 4x4 matrix a
// and its (unit) eigenvector, using cyclic Jacobi sweeps. Jacobi is exact
// enough here (the matrix is tiny and symmetric) and has no numerical
// failure modes for this use.
func maxEigen4(a [4][4]float64) (float64, [4]float64) {
	// v accumulates the rotations; starts as identity.
	var v [4][4]float64
	for i := 0; i < 4; i++ {
		v[i][i] = 1
	}
	for sweep := 0; sweep < 64; sweep++ {
		off := 0.0
		for i := 0; i < 4; i++ {
			for j := i + 1; j < 4; j++ {
				off += a[i][j] * a[i][j]
			}
		}
		if off < 1e-24 {
			break
		}
		for i := 0; i < 4; i++ {
			for j := i + 1; j < 4; j++ {
				if a[i][j] == 0 {
					continue
				}
				// Compute the Jacobi rotation (c, s) that zeroes a[i][j].
				theta := (a[j][j] - a[i][i]) / (2 * a[i][j])
				t := 1 / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				if theta < 0 {
					t = -t
				}
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				// Apply rotation: a = J^T a J on rows/cols i, j.
				for k := 0; k < 4; k++ {
					aik, ajk := a[i][k], a[j][k]
					a[i][k] = c*aik - s*ajk
					a[j][k] = s*aik + c*ajk
				}
				for k := 0; k < 4; k++ {
					aki, akj := a[k][i], a[k][j]
					a[k][i] = c*aki - s*akj
					a[k][j] = s*aki + c*akj
				}
				for k := 0; k < 4; k++ {
					vki, vkj := v[k][i], v[k][j]
					v[k][i] = c*vki - s*vkj
					v[k][j] = s*vki + c*vkj
				}
			}
		}
	}
	// Pick the largest eigenvalue on the diagonal.
	best := 0
	for i := 1; i < 4; i++ {
		if a[i][i] > a[best][best] {
			best = i
		}
	}
	var vec [4]float64
	for k := 0; k < 4; k++ {
		vec[k] = v[k][best]
	}
	// Normalise (guards against drift over sweeps).
	n := math.Sqrt(vec[0]*vec[0] + vec[1]*vec[1] + vec[2]*vec[2] + vec[3]*vec[3])
	if n > 0 {
		for k := range vec {
			vec[k] /= n
		}
	}
	return a[best][best], vec
}
