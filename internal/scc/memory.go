package scc

import (
	"fmt"

	"rckalign/internal/noc"
	"rckalign/internal/sim"
)

// Off-chip memory: the SCC's four DDR3 memory controllers (iMCs) sit at
// the mesh corners, each serving the quadrant of tiles nearest to it
// (Table I / Figure 1). Accesses cross the mesh to the controller and
// then queue at it — the controller is the contended resource that
// RCCE's off-chip shared memory (RCCE_shmalloc) and all DRAM traffic
// go through.

// memControllers returns the router coordinates hosting the iMCs (the
// four corner positions for the standard 4-controller chip; fewer
// controllers take a prefix of the corners).
func (c *Chip) memControllers() []noc.Coord {
	w, h := c.cfg.TilesX-1, c.cfg.TilesY-1
	corners := []noc.Coord{{X: 0, Y: 0}, {X: w, Y: 0}, {X: 0, Y: h}, {X: w, Y: h}}
	n := c.cfg.MemControllers
	if n < 1 {
		n = 1
	}
	if n > len(corners) {
		n = len(corners)
	}
	return corners[:n]
}

// MemControllerOf returns the index and coordinate of the iMC serving a
// core (the nearest controller, ties to the lowest index — the SCC's
// quadrant assignment).
func (c *Chip) MemControllerOf(core int) (int, noc.Coord) {
	pos := c.CoordOf(core)
	mcs := c.memControllers()
	best, bestHops := 0, 1<<30
	for i, mc := range mcs {
		if h := c.mesh.Hops(pos, mc); h < bestHops {
			best, bestHops = i, h
		}
	}
	return best, mcs[best]
}

// ensureMCs lazily builds the controller resources.
func (c *Chip) ensureMCs() {
	if c.mcRes != nil {
		return
	}
	mcs := c.memControllers()
	c.mcRes = make([]*sim.Resource, len(mcs))
	for i := range c.mcRes {
		c.mcRes[i] = sim.NewResource(fmt.Sprintf("imc%d", i), 1)
	}
}

// MemAccess moves `bytes` between a core and its memory controller
// (direction does not matter for timing): the request crosses the mesh
// to the controller, queues there, and is served at the DRAM bandwidth.
func (c *Chip) MemAccess(p *sim.Process, core, bytes int) {
	if bytes < 1 {
		bytes = 1
	}
	c.ensureMCs()
	idx, mc := c.MemControllerOf(core)
	c.mesh.Transfer(p, c.CoordOf(core), mc, bytes)
	service := float64(bytes)/c.cfg.MemBandwidth + c.cfg.MemLatencySeconds
	c.mcRes[idx].Use(p, service)
}

// MemBusySeconds reports each controller's accumulated service time,
// for bottleneck analysis.
func (c *Chip) MemBusySeconds() []float64 {
	c.ensureMCs()
	out := make([]float64, len(c.mcRes))
	for i, r := range c.mcRes {
		out[i] = r.BusySeconds()
	}
	return out
}
