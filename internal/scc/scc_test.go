package scc

import (
	"testing"

	"rckalign/internal/costmodel"
	"rckalign/internal/noc"
	"rckalign/internal/sim"
)

// TestTableI asserts the chip configuration the paper lists in Table I.
func TestTableI(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.NumCores() != 48 {
		t.Errorf("cores = %d, want 48", cfg.NumCores())
	}
	if cfg.NumTiles() != 24 {
		t.Errorf("tiles = %d, want 24", cfg.NumTiles())
	}
	if cfg.TilesX != 6 || cfg.TilesY != 4 {
		t.Errorf("grid = %dx%d, want 6x4", cfg.TilesX, cfg.TilesY)
	}
	if cfg.CoresPerTile != 2 {
		t.Errorf("cores/tile = %d, want 2", cfg.CoresPerTile)
	}
	if cfg.MPBBytesPerTile != 16*1024 {
		t.Errorf("MPB/tile = %d, want 16K", cfg.MPBBytesPerTile)
	}
	if cfg.MPBTotal() != 384*1024 {
		t.Errorf("MPB total = %d, want 384K", cfg.MPBTotal())
	}
	if cfg.MPBPerCore() != 8*1024 {
		t.Errorf("MPB/core = %d, want 8K", cfg.MPBPerCore())
	}
	if cfg.MemControllers != 4 {
		t.Errorf("iMCs = %d, want 4", cfg.MemControllers)
	}
	if cfg.CPU.FreqHz != 800e6 {
		t.Errorf("core clock = %v, want 800 MHz", cfg.CPU.FreqHz)
	}
}

func TestTileAndCoordMapping(t *testing.T) {
	chip := New(sim.NewEngine(), DefaultConfig())
	if chip.TileOf(0) != 0 || chip.TileOf(1) != 0 {
		t.Error("cores 0,1 must share tile 0")
	}
	if chip.TileOf(2) != 1 {
		t.Error("core 2 must be tile 1")
	}
	if chip.TileOf(47) != 23 {
		t.Error("core 47 must be tile 23")
	}
	if got := chip.CoordOf(0); got != (noc.Coord{X: 0, Y: 0}) {
		t.Errorf("coord of core 0 = %v", got)
	}
	if got := chip.CoordOf(47); got != (noc.Coord{X: 5, Y: 3}) {
		t.Errorf("coord of core 47 = %v", got)
	}
	// Coordinates must be in mesh bounds for all cores.
	for core := 0; core < chip.NumCores(); core++ {
		if !chip.Mesh().InBounds(chip.CoordOf(core)) {
			t.Fatalf("core %d coordinate out of bounds", core)
		}
	}
}

func TestCoreNames(t *testing.T) {
	chip := New(sim.NewEngine(), DefaultConfig())
	if chip.CoreName(0) != "rck00" || chip.CoreName(47) != "rck47" {
		t.Errorf("names: %s, %s", chip.CoreName(0), chip.CoreName(47))
	}
}

func TestCoreRangePanics(t *testing.T) {
	chip := New(sim.NewEngine(), DefaultConfig())
	defer func() {
		if recover() == nil {
			t.Error("expected panic for core 48")
		}
	}()
	chip.TileOf(48)
}

func TestComputeCharges(t *testing.T) {
	e := sim.NewEngine()
	chip := New(e, DefaultConfig())
	ops := costmodel.Counter{DPCells: 1_000_000}
	want := chip.Config().CPU.Seconds(ops)
	if want <= 0 {
		t.Fatal("zero compute time")
	}
	var at float64
	chip.SpawnCore(3, func(p *sim.Process) {
		chip.Compute(p, ops)
		at = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if at != want {
		t.Errorf("compute took %v, want %v", at, want)
	}
}

func TestTransferBetweenCores(t *testing.T) {
	e := sim.NewEngine()
	chip := New(e, DefaultConfig())
	var sameTile, farAway float64
	chip.SpawnCore(0, func(p *sim.Process) {
		start := p.Now()
		chip.Transfer(p, 0, 1, 8192) // same tile
		sameTile = p.Now() - start
		start = p.Now()
		chip.Transfer(p, 0, 47, 8192) // corner to corner
		farAway = p.Now() - start
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if sameTile <= 0 || farAway <= 0 {
		t.Fatal("transfers consumed no time")
	}
	if farAway <= sameTile {
		t.Errorf("cross-chip (%v) should cost more than same-tile (%v)", farAway, sameTile)
	}
}

func TestMeshGeometryFollowsTiles(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Mesh.Width = 99 // wrong on purpose; New must fix it
	chip := New(sim.NewEngine(), cfg)
	if got := chip.Mesh().Config().Width; got != cfg.TilesX {
		t.Errorf("mesh width = %d, want %d", got, cfg.TilesX)
	}
}

func TestInvalidGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(sim.NewEngine(), Config{TilesX: 0, TilesY: 4, CoresPerTile: 2})
}

func TestMemControllerQuadrants(t *testing.T) {
	chip := New(sim.NewEngine(), DefaultConfig())
	// Core 0 (tile 0,0) -> controller at (0,0); core 47 (tile 5,3) ->
	// controller at (5,3).
	if i, mc := chip.MemControllerOf(0); i != 0 || mc != (noc.Coord{X: 0, Y: 0}) {
		t.Errorf("core 0 -> iMC %d at %v", i, mc)
	}
	if _, mc := chip.MemControllerOf(47); mc != (noc.Coord{X: 5, Y: 3}) {
		t.Errorf("core 47 -> iMC at %v", mc)
	}
	// Every core maps to some controller in bounds.
	for core := 0; core < chip.NumCores(); core++ {
		i, mc := chip.MemControllerOf(core)
		if i < 0 || i >= 4 || !chip.Mesh().InBounds(mc) {
			t.Fatalf("core %d -> iMC %d at %v", core, i, mc)
		}
	}
}

func TestMemAccessTakesTimeAndScales(t *testing.T) {
	e := sim.NewEngine()
	chip := New(e, DefaultConfig())
	var small, big float64
	chip.SpawnCore(0, func(p *sim.Process) {
		start := p.Now()
		chip.MemAccess(p, 0, 64)
		small = p.Now() - start
		start = p.Now()
		chip.MemAccess(p, 0, 1<<20)
		big = p.Now() - start
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if small <= 0 || big <= small {
		t.Errorf("mem access times: small=%v big=%v", small, big)
	}
	busy := chip.MemBusySeconds()
	if busy[0] <= 0 {
		t.Error("iMC 0 recorded no service time")
	}
}

func TestMemControllerContention(t *testing.T) {
	// Four cores of the same quadrant hammering one iMC must serialise;
	// cores spread across quadrants go to different controllers.
	run := func(cores []int) float64 {
		e := sim.NewEngine()
		chip := New(e, DefaultConfig())
		var last float64
		for _, core := range cores {
			core := core
			chip.SpawnCore(core, func(p *sim.Process) {
				chip.MemAccess(p, core, 8<<20)
				if p.Now() > last {
					last = p.Now()
				}
			})
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return last
	}
	sameQuadrant := run([]int{0, 1, 2, 3}) // all near (0,0)
	spread := run([]int{0, 10, 36, 46})    // one per quadrant
	if sameQuadrant <= spread*1.5 {
		t.Errorf("same-quadrant (%v) should be much slower than spread (%v)", sameQuadrant, spread)
	}
}
