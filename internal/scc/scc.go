// Package scc models Intel's Single-chip Cloud Computer: 48 P54C cores on
// 24 tiles arranged in a 6x4 mesh, with a 16 KB message-passing buffer
// (MPB) per tile and four memory controllers at the mesh corners
// (Table I of the paper). Cores are simulated processes whose compute
// time comes from the cost model; inter-core traffic crosses the noc
// mesh.
package scc

import (
	"fmt"

	"rckalign/internal/costmodel"
	"rckalign/internal/noc"
	"rckalign/internal/sim"
)

// Config describes a chip (defaults reproduce Table I).
type Config struct {
	// TilesX x TilesY tiles, CoresPerTile cores each.
	TilesX, TilesY, CoresPerTile int
	// MPBBytesPerTile is the per-tile message passing buffer (shared by
	// the tile's cores; each core owns half).
	MPBBytesPerTile int
	// MemControllers is the number of on-die memory controllers.
	MemControllers int
	// CPU is the per-core cost profile.
	CPU costmodel.CPU
	// Mesh is the NoC configuration.
	Mesh noc.Config
	// MemBandwidth is each iMC's DRAM bandwidth (bytes/s).
	MemBandwidth float64
	// MemLatencySeconds is the fixed DRAM access latency per request.
	MemLatencySeconds float64
	// NamePrefix is prepended to every core name ("c1." yields
	// "c1.rck00"), so the chips of a multi-chip system get distinct
	// trace tracks, report keys and per-core metric labels. Empty (the
	// default) keeps the classic single-chip names bit-identical.
	NamePrefix string
}

// DefaultConfig returns the SCC as shipped: 6x4 tiles, 2 cores/tile,
// 16 KB MPB/tile, 4 iMCs, P54C cores at 800 MHz.
func DefaultConfig() Config {
	return Config{
		TilesX:          6,
		TilesY:          4,
		CoresPerTile:    2,
		MPBBytesPerTile: 16 * 1024,
		MemControllers:  4,
		CPU:             costmodel.P54C(),
		Mesh:            noc.DefaultConfig(),
		// DDR3-800 per controller, conservative effective rate.
		MemBandwidth:      5.3e9,
		MemLatencySeconds: 70e-9,
	}
}

// NumTiles returns the tile count.
func (c Config) NumTiles() int { return c.TilesX * c.TilesY }

// NumCores returns the core count.
func (c Config) NumCores() int { return c.NumTiles() * c.CoresPerTile }

// MPBTotal returns the chip-wide MPB capacity.
func (c Config) MPBTotal() int { return c.NumTiles() * c.MPBBytesPerTile }

// MPBPerCore returns each core's share of its tile MPB (the RCCE chunk
// size for large messages).
func (c Config) MPBPerCore() int { return c.MPBBytesPerTile / c.CoresPerTile }

// CoreName returns the SCC host name of a core (rck00...rck47, behind
// the optional NamePrefix) without needing an instantiated chip; trace
// tracks and farm reports key on it.
func (c Config) CoreName(core int) string { return fmt.Sprintf("%srck%02d", c.NamePrefix, core) }

// Chip is an instantiated SCC attached to a simulation engine.
type Chip struct {
	cfg    Config
	engine *sim.Engine
	mesh   *noc.Mesh
	mcRes  []*sim.Resource // lazily built iMC service queues
	procs  map[int]*sim.Process
}

// New builds a chip on the given engine.
func New(e *sim.Engine, cfg Config) *Chip {
	if cfg.TilesX <= 0 || cfg.TilesY <= 0 || cfg.CoresPerTile <= 0 {
		panic("scc: invalid tile geometry")
	}
	if cfg.Mesh.Width != cfg.TilesX || cfg.Mesh.Height != cfg.TilesY {
		// The mesh routers sit one per tile.
		cfg.Mesh.Width = cfg.TilesX
		cfg.Mesh.Height = cfg.TilesY
	}
	return &Chip{cfg: cfg, engine: e, mesh: noc.New(cfg.Mesh), procs: map[int]*sim.Process{}}
}

// Config returns the chip configuration.
func (c *Chip) Config() Config { return c.cfg }

// Engine returns the simulation engine.
func (c *Chip) Engine() *sim.Engine { return c.engine }

// Mesh returns the on-chip network.
func (c *Chip) Mesh() *noc.Mesh { return c.mesh }

// NumCores returns the chip's core count.
func (c *Chip) NumCores() int { return c.cfg.NumCores() }

// TileOf returns the tile index of a core (cores are numbered rck00..;
// two consecutive core ids share a tile, as on the SCC).
func (c *Chip) TileOf(core int) int {
	c.checkCore(core)
	return core / c.cfg.CoresPerTile
}

// CoordOf returns the mesh router coordinate of a core's tile.
func (c *Chip) CoordOf(core int) noc.Coord {
	tile := c.TileOf(core)
	return noc.Coord{X: tile % c.cfg.TilesX, Y: tile / c.cfg.TilesX}
}

// CoreName returns the SCC host name of a core (rck00...rck47).
func (c *Chip) CoreName(core int) string {
	c.checkCore(core)
	return c.cfg.CoreName(core)
}

func (c *Chip) checkCore(core int) {
	if core < 0 || core >= c.cfg.NumCores() {
		panic(fmt.Sprintf("scc: core %d out of range [0,%d)", core, c.cfg.NumCores()))
	}
}

// ComputeSeconds converts an operation count to seconds on one core.
func (c *Chip) ComputeSeconds(ops costmodel.Counter) float64 {
	return c.cfg.CPU.Seconds(ops)
}

// Compute charges the operation count as simulated busy time in process
// p (which represents code running on one core).
func (c *Chip) Compute(p *sim.Process, ops costmodel.Counter) {
	p.Wait(c.ComputeSeconds(ops))
}

// SpawnCore starts a simulated-core process named after the core id.
func (c *Chip) SpawnCore(core int, body func(p *sim.Process)) *sim.Process {
	c.checkCore(core)
	p := c.engine.Spawn(c.CoreName(core), body)
	c.procs[core] = p
	return p
}

// Proc returns the process most recently spawned for a core (nil if the
// core was never spawned). Fault injectors use it to target kills and
// stalls at core granularity.
func (c *Chip) Proc(core int) *sim.Process {
	c.checkCore(core)
	return c.procs[core]
}

// Transfer moves bytes between two cores over the mesh from within
// process p. Same-tile transfers cross only the local MIU.
func (c *Chip) Transfer(p *sim.Process, from, to, bytes int) {
	c.mesh.Transfer(p, c.CoordOf(from), c.CoordOf(to), bytes)
}
