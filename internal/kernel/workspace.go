// Package kernel provides the per-worker scratch workspace shared by the
// TM-align numeric kernels (geom, tmscore, seqalign, tmalign).
//
// The kernels' hot loops — the TM-score fragment search, the NW/Gotoh DP
// rows, the Kabsch superposition — all need O(n) and O(n^2) scratch.
// Allocating it per call puts hundreds of allocations on the path of a
// single pairwise comparison; a Workspace owns every buffer once and is
// reused across comparisons by the worker that holds it. Workspaces are
// not safe for concurrent use: each host worker goroutine checks one out
// of the package pool (Get/Put) or owns one outright.
//
// Buffer groups are segregated by kernel layer so a caller that is
// mid-flight in one layer can invoke the next without aliasing its own
// scratch: tmalign owns the Pair*/Mat buffers, tmscore.Params.SearchWS
// owns the Search* buffers, and geom/seqalign take explicit slices.
package kernel

import (
	"sync"

	"rckalign/internal/geom"
	"rckalign/internal/seqalign"
)

// Workspace holds reusable kernel scratch. The zero value is ready to
// use; buffers grow geometrically and are never shrunk.
type Workspace struct {
	// PairX/PairY/PairT and the int/float companions are the tmalign
	// comparison layer's scratch: gathered aligned coordinate pairs,
	// transformed coordinates, per-pair squared distances and candidate
	// alignments.
	PairX, PairY, PairT []geom.Vec3
	R1, R2              []geom.Vec3
	Dis2                []float64
	// InvTmp holds innermost candidate alignments, InvSeed the current
	// initial alignment under refinement, InvDP the DP loop's best, and
	// InvBest the best alignment across all initials.
	InvTmp, InvSeed, InvDP, InvBest []int

	// YX/YY/YZ are the SoA (structure-of-arrays) mirror of the second
	// chain's coordinates, laid out for the fused distance+score matrix
	// fills (one contiguous stream per axis instead of strided Vec3
	// loads).
	YX, YY, YZ []float64

	// YX32/YY32/YZ32 mirror YX/YY/YZ in single precision for the opt-in
	// float32 fast path (Reserve32).
	YX32, YY32, YZ32 []float32

	// Mat is the xlen x ylen score matrix of the DP refinement loops.
	Mat []float64

	// SearchXt/SearchR1/SearchR2/SearchIAli/SearchKAli/SearchDis2 are
	// the TM-score rotation search's private scratch (tmscore.SearchWS).
	// They are distinct from the pair buffers because the search runs
	// while the comparison layer's own buffers hold live data.
	SearchXt, SearchR1, SearchR2 []geom.Vec3
	SearchIAli, SearchKAli       []int
	SearchDis2                   []float64

	// nw is the worker's DP aligner (its own val/path/Gotoh tables),
	// created on first use via Aligner.
	nw *seqalign.Aligner
}

// Aligner returns the workspace's reusable DP aligner, creating it on
// first use.
func (w *Workspace) Aligner() *seqalign.Aligner {
	if w.nw == nil {
		w.nw = seqalign.NewAligner()
	}
	return w.nw
}

// grow returns s extended to length n, reallocating geometrically (at
// least 2x the previous capacity) so ascending problem sizes do not
// reallocate per call.
func grow[T any](s []T, n int) []T {
	if cap(s) >= n {
		return s[:n]
	}
	c := 2 * cap(s)
	if c < n {
		c = n
	}
	return make([]T, n, c)
}

// ReservePairs sizes the comparison-layer buffers for chains of up to n
// residues each.
func (w *Workspace) ReservePairs(n int) {
	w.PairX = grow(w.PairX, n)
	w.PairY = grow(w.PairY, n)
	w.PairT = grow(w.PairT, n)
	w.R1 = grow(w.R1, n)
	w.R2 = grow(w.R2, n)
	w.Dis2 = grow(w.Dis2, n)
	w.InvTmp = grow(w.InvTmp, n)
	w.InvSeed = grow(w.InvSeed, n)
	w.InvDP = grow(w.InvDP, n)
	w.InvBest = grow(w.InvBest, n)
	w.YX = grow(w.YX, n)
	w.YY = grow(w.YY, n)
	w.YZ = grow(w.YZ, n)
}

// Reserve32 sizes the float32 SoA mirrors (only the float32 fast path
// pays for them).
func (w *Workspace) Reserve32(n int) {
	w.YX32 = grow(w.YX32, n)
	w.YY32 = grow(w.YY32, n)
	w.YZ32 = grow(w.YZ32, n)
}

// ReserveMat sizes the score matrix for an xlen x ylen problem.
func (w *Workspace) ReserveMat(cells int) {
	w.Mat = grow(w.Mat, cells)
}

// ReserveSearch sizes the TM-score search scratch for alignments of up
// to n pairs.
func (w *Workspace) ReserveSearch(n int) {
	w.SearchXt = grow(w.SearchXt, n)
	w.SearchR1 = grow(w.SearchR1, n)
	w.SearchR2 = grow(w.SearchR2, n)
	w.SearchIAli = grow(w.SearchIAli, n)
	w.SearchKAli = grow(w.SearchKAli, n)
	w.SearchDis2 = grow(w.SearchDis2, n)
}

var pool = sync.Pool{New: func() any { return new(Workspace) }}

// Get checks a Workspace out of the package pool. Pair it with Put once
// the comparison completes; a workspace that is never Put is simply
// garbage collected.
func Get() *Workspace { return pool.Get().(*Workspace) }

// Put returns a workspace to the pool. The caller must not retain any
// slice of it afterwards.
func Put(w *Workspace) { pool.Put(w) }
